//! Pass 2a: the workspace call graph over the pass-1 item models.
//!
//! Name resolution is deliberately conservative — a dropped edge only
//! costs recall (std-library effects are covered by the seed tables
//! instead), while a false edge would produce false interprocedural
//! findings. The rules:
//!
//! * `.method(` calls resolve **same-file only** (a cross-file method
//!   name like `.get(` would otherwise alias every container in the
//!   crate);
//! * bare `f(` calls and `Type::method(` calls resolve same-file first,
//!   then same-crate **iff the name is unique** in the crate;
//! * `crate::`/`self::`/`super::`/module-qualified calls resolve
//!   same-crate iff unique;
//! * `tnb_xxx::` calls resolve into that crate iff unique;
//! * `std::`/`core::`/`alloc::` and anything unresolved produce no edge.
//!
//! Only library-source, non-test fns participate: a test helper sharing
//! a name with production code must never become a callee.

use crate::model::FileModel;
use crate::rules::FileKind;
use std::collections::BTreeMap;

/// Global fn id → (file index, fn index within that file's model).
#[derive(Debug, Clone, Copy)]
pub struct FnRef {
    pub file: usize,
    pub item: usize,
}

/// One resolved call edge, anchored at its call site in the caller.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    pub callee: usize,
    /// 0-based call-site position in the caller's file.
    pub line: usize,
    pub col: usize,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct Graph {
    pub fns: Vec<FnRef>,
    /// Outgoing edges per global fn id.
    pub edges: Vec<Vec<Edge>>,
}

impl Graph {
    pub fn fn_name<'m>(&self, models: &'m [FileModel], id: usize) -> &'m str {
        let r = self.fns[id];
        &models[r.file].fns[r.item].name
    }
}

/// Builds the graph over every library-source, non-test fn in `models`.
pub fn build(models: &[FileModel]) -> Graph {
    let mut fns = Vec::new();
    // (file, item) -> global id, plus name indices for resolution.
    let mut id_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut by_file: BTreeMap<(usize, String), Vec<usize>> = BTreeMap::new();
    let mut by_crate: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (fi, m) in models.iter().enumerate() {
        if m.scope.kind != FileKind::LibSrc {
            continue;
        }
        for (ii, f) in m.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let id = fns.len();
            fns.push(FnRef { file: fi, item: ii });
            id_of.insert((fi, ii), id);
            by_file.entry((fi, f.name.clone())).or_default().push(id);
            by_crate
                .entry((m.scope.crate_name.clone(), f.name.clone()))
                .or_default()
                .push(id);
        }
    }
    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
    for (caller, r) in fns.iter().enumerate() {
        let m = &models[r.file];
        let f = &m.fns[r.item];
        for call in &f.calls {
            let targets = resolve(call, r.file, &m.scope.crate_name, &by_file, &by_crate);
            for callee in targets {
                if callee != caller {
                    edges[caller].push(Edge {
                        callee,
                        line: call.line,
                        col: call.col,
                    });
                }
            }
        }
    }
    Graph { fns, edges }
}

/// Resolves one call site to zero or more callee ids.
fn resolve(
    call: &crate::model::CallSite,
    file: usize,
    crate_name: &str,
    by_file: &BTreeMap<(usize, String), Vec<usize>>,
    by_crate: &BTreeMap<(String, String), Vec<usize>>,
) -> Vec<usize> {
    let in_file = || {
        by_file
            .get(&(file, call.callee.clone()))
            .cloned()
            .unwrap_or_default()
    };
    let in_crate_unique = |krate: &str| {
        by_crate
            .get(&(krate.to_string(), call.callee.clone()))
            .filter(|ids| ids.len() == 1)
            .cloned()
            .unwrap_or_default()
    };
    if call.is_method {
        return in_file();
    }
    match call.path.first().map(String::as_str) {
        None => {
            // Bare call: same file first, same crate when unique.
            let local = in_file();
            if local.is_empty() {
                in_crate_unique(crate_name)
            } else {
                local
            }
        }
        Some("std") | Some("core") | Some("alloc") => Vec::new(),
        Some(first) if first.starts_with("tnb_") => in_crate_unique(&first.replace('_', "-")),
        Some(first) if first.starts_with(|c: char| c.is_ascii_uppercase()) => {
            // `Type::method(`: the type is most likely defined alongside
            // its use; fall back to a unique crate-wide name.
            let local = in_file();
            if local.is_empty() {
                in_crate_unique(crate_name)
            } else {
                local
            }
        }
        // `crate::` / `self::` / `super::` / `module::` paths.
        Some(_) => in_crate_unique(crate_name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model;
    use crate::rules::{FileKind, FileScope};
    use crate::source::SourceFile;

    fn models(files: &[(&str, &str, FileKind, &str)]) -> Vec<FileModel> {
        files
            .iter()
            .map(|(path, krate, kind, content)| {
                let scope = FileScope {
                    crate_name: krate.to_string(),
                    kind: *kind,
                };
                model::build(path, &scope, &SourceFile::parse(content))
            })
            .collect()
    }

    fn edge_names(g: &Graph, ms: &[FileModel], caller: &str) -> Vec<String> {
        let id = (0..g.fns.len())
            .find(|&i| g.fn_name(ms, i) == caller)
            .expect("caller in graph");
        g.edges[id]
            .iter()
            .map(|e| g.fn_name(ms, e.callee).to_string())
            .collect()
    }

    #[test]
    fn bare_calls_resolve_same_file_then_unique_crate() {
        let ms = models(&[
            (
                "crates/core/src/a.rs",
                "tnb-core",
                FileKind::LibSrc,
                "fn top() {\n    local();\n    other_file();\n}\nfn local() {}\n",
            ),
            (
                "crates/core/src/b.rs",
                "tnb-core",
                FileKind::LibSrc,
                "pub fn other_file() {}\n",
            ),
        ]);
        let g = build(&ms);
        assert_eq!(edge_names(&g, &ms, "top"), ["local", "other_file"]);
    }

    #[test]
    fn method_calls_resolve_same_file_only() {
        let ms = models(&[
            (
                "crates/core/src/a.rs",
                "tnb-core",
                FileKind::LibSrc,
                "fn top(c: Cache) {\n    c.get(1);\n}\n",
            ),
            (
                "crates/core/src/b.rs",
                "tnb-core",
                FileKind::LibSrc,
                "pub fn get(k: u32) {}\n",
            ),
        ]);
        let g = build(&ms);
        assert!(edge_names(&g, &ms, "top").is_empty());
    }

    #[test]
    fn cross_crate_paths_resolve_when_unique() {
        let ms = models(&[
            (
                "crates/core/src/a.rs",
                "tnb-core",
                FileKind::LibSrc,
                "fn top(x: f32) {\n    tnb_dsp::fft::plan(x);\n    std::mem::take(&mut x);\n}\n",
            ),
            (
                "crates/dsp/src/fft.rs",
                "tnb-dsp",
                FileKind::LibSrc,
                "pub fn plan(x: f32) {}\n",
            ),
        ]);
        let g = build(&ms);
        assert_eq!(edge_names(&g, &ms, "top"), ["plan"]);
    }

    #[test]
    fn ambiguous_crate_names_and_test_fns_produce_no_edges() {
        let ms = models(&[
            (
                "crates/core/src/a.rs",
                "tnb-core",
                FileKind::LibSrc,
                "fn top() {\n    helper();\n}\n",
            ),
            (
                "crates/core/src/b.rs",
                "tnb-core",
                FileKind::LibSrc,
                "pub fn helper() {}\npub fn unrelated() {}\n",
            ),
            (
                "crates/core/src/c.rs",
                "tnb-core",
                FileKind::LibSrc,
                "pub fn helper() {}\n",
            ),
            (
                "crates/core/tests/t.rs",
                "tnb-core",
                FileKind::TestCode,
                "fn top() {}\nfn helper() {}\n",
            ),
        ]);
        let g = build(&ms);
        // Two lib fns named `helper` → ambiguous → no edge; the test-file
        // fns are not in the graph at all.
        assert!(edge_names(&g, &ms, "top").is_empty());
        assert_eq!(g.fns.len(), 4, "a::top, b::helper, b::unrelated, c::helper");
    }
}
