//! Pass 2b: effect inference over the call graph (TNB-FLOW01..03).
//!
//! Each fn's *direct* effects come from the curated seed tables
//! (`ALLOC_TOKENS`, `PANIC_MACROS`/`UNWRAP_TOKENS`, `CLOCK_TOKENS`/
//! `HASH_TOKENS`); transitive effects are the union over call edges,
//! propagated to a fixed point. The lattice is a bit set — joining is
//! bitwise OR, so the fixpoint exists and is reached in at most
//! `|fns|` rounds.
//!
//! Escape hatches compose: an allowed seed line never seeds (the
//! justification covers the transitive story), and an
//! `allow(TNB-FLOW0x)` on a *call* line cuts that effect's propagation
//! across the edge.

use crate::callgraph::Graph;
use crate::diagnostics::Diagnostic;
use crate::model::{EffectKind, FileModel, Seed};
use crate::rules::{DETERMINISM_CRATES, PANIC_FREE_CRATES};
use crate::source::SourceFile;
use std::collections::BTreeMap;

pub const ALLOC: u8 = 1;
pub const PANIC: u8 = 2;
pub const CLOCK: u8 = 4;
pub const NONDET: u8 = 8;
pub const BLOCKING: u8 = 16;

/// Hot-path entry points that must stay annotated as `no_alloc_root`:
/// (file suffix, fn name). Enforced only when the file is among the
/// lint inputs, so single-fixture runs are unaffected. Deleting a
/// directive from one of these fns flips the lint red (TNB-FLOW01).
pub const REQUIRED_NO_ALLOC_ROOTS: [(&str, &str); 12] = [
    ("crates/phy/src/demodulate.rs", "complex_spectrum_scratch"),
    (
        "crates/phy/src/demodulate.rs",
        "complex_spectrum_down_scratch",
    ),
    ("crates/phy/src/demodulate.rs", "fold_into"),
    ("crates/phy/src/demodulate.rs", "signal_vector_scratch"),
    ("crates/phy/src/demodulate.rs", "signal_vector_down_scratch"),
    ("crates/core/src/sync.rs", "fractional_sync_scratch"),
    ("crates/core/src/sigcalc.rs", "symbol_vector"),
    ("crates/core/src/thrive/mod.rs", "assign_checkpoint_scratch"),
    ("crates/core/src/sic.rs", "rotate_cfo"),
    ("crates/core/src/sic.rs", "estimate_block_gains"),
    ("crates/core/src/sic.rs", "mean_gain_power"),
    ("crates/core/src/sic.rs", "subtract_replica"),
];

fn seed_bit(kind: EffectKind) -> u8 {
    match kind {
        EffectKind::Alloc => ALLOC,
        EffectKind::Panic => PANIC,
        EffectKind::Clock => CLOCK,
        EffectKind::NondetOrder => NONDET,
        EffectKind::Blocking => BLOCKING,
    }
}

/// Effect mask an `allow(TNB-FLOW0x)`/`allow(flow)` on a call line cuts.
fn cut_mask(src: &SourceFile, line: usize) -> u8 {
    let mut cut = 0;
    if src.is_allowed(line, "TNB-FLOW01", "flow") {
        cut |= ALLOC;
    }
    if src.is_allowed(line, "TNB-FLOW02", "flow") {
        cut |= PANIC;
    }
    if src.is_allowed(line, "TNB-FLOW03", "flow") {
        cut |= CLOCK | NONDET;
    }
    cut
}

/// Direct seed mask of one fn. `tnb-metrics` is the determinism
/// barrier: its sinks are merged deterministically after worker join,
/// so clock/order seeds inside it never taint callers.
fn seed_mask(m: &FileModel, seeds: &[Seed]) -> u8 {
    let barrier = m.scope.crate_name == "tnb-metrics";
    seeds
        .iter()
        .map(|s| seed_bit(s.kind))
        .filter(|&b| !(barrier && (b == CLOCK || b == NONDET)))
        .fold(0, |acc, b| acc | b)
}

/// The computed effect state: per-fn transitive masks plus per-edge cuts.
pub struct Effects {
    /// Transitive effect mask per global fn id (seed ∪ callees).
    pub mask: Vec<u8>,
    /// Direct seed mask per global fn id.
    pub seeds: Vec<u8>,
    /// Per-edge cut mask, parallel to `graph.edges` (outer: fn id).
    pub cuts: Vec<Vec<u8>>,
}

/// Propagates seed effects over the graph to a fixed point.
pub fn propagate(models: &[FileModel], srcs: &[SourceFile], graph: &Graph) -> Effects {
    let n = graph.fns.len();
    let mut seeds = vec![0u8; n];
    for (id, r) in graph.fns.iter().enumerate() {
        seeds[id] = seed_mask(&models[r.file], &models[r.file].fns[r.item].seeds);
    }
    let cuts: Vec<Vec<u8>> = (0..n)
        .map(|id| {
            let file = graph.fns[id].file;
            graph.edges[id]
                .iter()
                .map(|e| cut_mask(&srcs[file], e.line))
                .collect()
        })
        .collect();
    let mut mask = seeds.clone();
    loop {
        let mut changed = false;
        for id in 0..n {
            let mut m = mask[id];
            for (ei, e) in graph.edges[id].iter().enumerate() {
                m |= mask[e.callee] & !cuts[id][ei];
            }
            if m != mask[id] {
                mask[id] = m;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Effects { mask, seeds, cuts }
}

/// Runs the three flow rules, appending diagnostics.
pub fn check(
    models: &[FileModel],
    srcs: &[SourceFile],
    graph: &Graph,
    fx: &Effects,
    diags: &mut Vec<Diagnostic>,
) {
    check_required_roots(models, srcs, diags);
    check_flow01(models, srcs, graph, fx, diags);
    check_flow02(models, graph, fx, diags);
    check_flow03(models, graph, fx, diags);
}

/// TNB-FLOW01 (registry half): every required hot-path entry fn must
/// exist and carry its `no_alloc_root` directive.
fn check_required_roots(models: &[FileModel], srcs: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    for (suffix, fn_name) in REQUIRED_NO_ALLOC_ROOTS {
        let Some(fi) = models.iter().position(|m| m.rel_path.ends_with(suffix)) else {
            continue; // file not among the inputs (fixture runs)
        };
        let m = &models[fi];
        match m.fns.iter().find(|f| f.name == fn_name) {
            None => diags.push(Diagnostic {
                file: m.rel_path.clone(),
                line: 1,
                col: 1,
                rule: "TNB-FLOW01",
                message: format!(
                    "required no_alloc root fn `{fn_name}` not found; hot-path entry points \
                     are registered in xtask's REQUIRED_NO_ALLOC_ROOTS — update the registry \
                     if the fn was renamed"
                ),
            }),
            Some(f) if !f.is_root => {
                if srcs[fi].is_allowed(f.sig_line, "TNB-FLOW01", "flow") {
                    continue;
                }
                diags.push(Diagnostic {
                    file: m.rel_path.clone(),
                    line: f.sig_line + 1,
                    col: 1,
                    rule: "TNB-FLOW01",
                    message: format!(
                        "hot-path entry fn `{fn_name}` must carry `// tnb-lint: no_alloc_root` \
                         (it seeds the interprocedural allocation check)"
                    ),
                });
            }
            Some(_) => {}
        }
    }
}

/// BFS from `start` over non-`bit`-cut edges, recording parents.
/// Returns (visit order, parent map).
fn reach(
    graph: &Graph,
    fx: &Effects,
    start: usize,
    bit: u8,
) -> (Vec<usize>, BTreeMap<usize, usize>) {
    let mut order = Vec::new();
    let mut parent = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([start]);
    let mut seen = vec![false; graph.fns.len()];
    seen[start] = true;
    while let Some(id) = queue.pop_front() {
        order.push(id);
        for (ei, e) in graph.edges[id].iter().enumerate() {
            if fx.cuts[id][ei] & bit != 0 || seen[e.callee] {
                continue;
            }
            seen[e.callee] = true;
            parent.insert(e.callee, id);
            queue.push_back(e.callee);
        }
    }
    (order, parent)
}

/// `root -> a -> b` chain string from the BFS parent map.
fn chain(
    graph: &Graph,
    models: &[FileModel],
    parent: &BTreeMap<usize, usize>,
    start: usize,
    end: usize,
) -> String {
    let mut names = vec![graph.fn_name(models, end).to_string()];
    let mut cur = end;
    while cur != start {
        let Some(&p) = parent.get(&cur) else { break };
        names.push(graph.fn_name(models, p).to_string());
        cur = p;
    }
    names.reverse();
    names.join(" -> ")
}

/// TNB-FLOW01 (graph half): a fn reachable from a `no_alloc_root`
/// transitively allocates. Reported at the seed site; the root's own
/// body and lexically `no_alloc`-marked lines are TNB-ALLOC01's domain
/// and excluded here.
fn check_flow01(
    models: &[FileModel],
    srcs: &[SourceFile],
    graph: &Graph,
    fx: &Effects,
    diags: &mut Vec<Diagnostic>,
) {
    let mut reported: BTreeMap<(usize, usize, usize), ()> = BTreeMap::new();
    for (root, r) in graph.fns.iter().enumerate() {
        if !models[r.file].fns[r.item].is_root {
            continue;
        }
        let (order, parent) = reach(graph, fx, root, ALLOC);
        for &id in order.iter().skip(1) {
            if fx.seeds[id] & ALLOC == 0 {
                continue;
            }
            let fr = graph.fns[id];
            let f = &models[fr.file].fns[fr.item];
            if f.is_root {
                continue; // its own region is lexically checked
            }
            for s in &f.seeds {
                if seed_bit(s.kind) != ALLOC || srcs[fr.file].lines[s.line].no_alloc {
                    continue;
                }
                if reported.insert((fr.file, s.line, s.col), ()).is_some() {
                    continue;
                }
                diags.push(Diagnostic {
                    file: models[fr.file].rel_path.clone(),
                    line: s.line + 1,
                    col: s.col + 1,
                    rule: "TNB-FLOW01",
                    message: format!(
                        "`{}` allocates on a hot path reachable from no_alloc root `{}` \
                         ({}): {}",
                        s.token,
                        graph.fn_name(models, root),
                        models[r.file].rel_path,
                        chain(graph, models, &parent, root, id),
                    ),
                });
            }
        }
    }
}

/// TNB-FLOW02: a panic-free crate's public API transitively reaches a
/// panic seed. Reported at the seed site (the lexical TNB-PANIC rules
/// may also fire there — one lists the site, the other the path).
fn check_flow02(models: &[FileModel], graph: &Graph, fx: &Effects, diags: &mut Vec<Diagnostic>) {
    let mut reported: BTreeMap<(usize, usize, usize), ()> = BTreeMap::new();
    for (src_fn, r) in graph.fns.iter().enumerate() {
        let m = &models[r.file];
        if !PANIC_FREE_CRATES.contains(&m.scope.crate_name.as_str())
            || !m.fns[r.item].is_pub
            || fx.mask[src_fn] & PANIC == 0
        {
            continue;
        }
        let (order, parent) = reach(graph, fx, src_fn, PANIC);
        for &id in order.iter().skip(1) {
            if fx.seeds[id] & PANIC == 0 {
                continue;
            }
            let fr = graph.fns[id];
            for s in &models[fr.file].fns[fr.item].seeds {
                if seed_bit(s.kind) != PANIC {
                    continue;
                }
                if reported.insert((fr.file, s.line, s.col), ()).is_some() {
                    continue;
                }
                diags.push(Diagnostic {
                    file: models[fr.file].rel_path.clone(),
                    line: s.line + 1,
                    col: s.col + 1,
                    rule: "TNB-FLOW02",
                    message: format!(
                        "`{}` may panic and is reachable from panic-free crate {}'s public \
                         `{}`: {}",
                        s.token,
                        m.scope.crate_name,
                        graph.fn_name(models, src_fn),
                        chain(graph, models, &parent, src_fn, id),
                    ),
                });
            }
        }
    }
}

/// First clock/order seed reachable from `start` (for the diagnostic).
fn representative_seed<'m>(
    models: &'m [FileModel],
    graph: &Graph,
    fx: &Effects,
    start: usize,
) -> Option<(&'m FileModel, &'m Seed)> {
    let (order, _) = reach(graph, fx, start, CLOCK | NONDET);
    for id in order {
        if fx.seeds[id] & (CLOCK | NONDET) == 0 {
            continue;
        }
        let fr = graph.fns[id];
        let m = &models[fr.file];
        if let Some(s) = m.fns[fr.item]
            .seeds
            .iter()
            .find(|s| seed_bit(s.kind) & (CLOCK | NONDET) != 0)
        {
            return Some((m, s));
        }
    }
    None
}

/// TNB-FLOW03: a call edge inside a determinism crate's decode path
/// whose callee transitively reads the wall clock or iterates a
/// hash-randomized collection. Reported at the call site.
fn check_flow03(models: &[FileModel], graph: &Graph, fx: &Effects, diags: &mut Vec<Diagnostic>) {
    for (caller, r) in graph.fns.iter().enumerate() {
        let m = &models[r.file];
        if !DETERMINISM_CRATES.contains(&m.scope.crate_name.as_str()) {
            continue;
        }
        for (ei, e) in graph.edges[caller].iter().enumerate() {
            let taint = fx.mask[e.callee] & (CLOCK | NONDET) & !fx.cuts[caller][ei];
            if taint == 0 {
                continue;
            }
            let what = match (taint & CLOCK != 0, taint & NONDET != 0) {
                (true, true) => "reads the wall clock and iterates hash-randomized collections",
                (true, false) => "reads the wall clock",
                _ => "iterates hash-randomized collections",
            };
            let seed = representative_seed(models, graph, fx, e.callee)
                .map(|(sm, s)| format!(" (seed: `{}` at {}:{})", s.token, sm.rel_path, s.line + 1))
                .unwrap_or_default();
            diags.push(Diagnostic {
                file: m.rel_path.clone(),
                line: e.line + 1,
                col: e.col + 1,
                rule: "TNB-FLOW03",
                message: format!(
                    "call to `{}` transitively {} in decode-path crate {}{}",
                    graph.fn_name(models, e.callee),
                    what,
                    m.scope.crate_name,
                    seed,
                ),
            });
        }
    }
}
