//! Workspace walking and the two-pass lint driver.
//!
//! [`run_lint`] maps every first-party `.rs` file to a [`FileScope`]
//! and feeds the set to [`lint_files`]: pass 1 (parallel, sharded
//! round-robin across cores with `std::thread::scope`) parses each
//! file, runs the line/token rules, and builds the pass-1 item model;
//! pass 2 (serial — it needs the whole-workspace call graph) runs the
//! interprocedural flow and lock rules. Results are merged in input
//! order before the final sort, so the output — including `--json` —
//! is byte-identical to a single-threaded run.
//!
//! Vendored compat shims (`compat/`), build output (`target/`) and the
//! linter's own bad-snippet fixtures (`crates/xtask/tests/fixtures/`)
//! are out of scope.

use crate::diagnostics::{self, Diagnostic};
use crate::layering;
use crate::model::{self, FileModel};
use crate::rules::{analyze_file, FileKind, FileScope};
use crate::source::SourceFile;
use crate::{callgraph, effects, locks};
use std::path::{Path, PathBuf};

/// Directories under the workspace root that are scanned.
const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Path substrings that exclude a file from scanning.
const EXCLUDES: [&str; 3] = ["compat/", "target/", "crates/xtask/tests/fixtures/"];

/// One file to lint, already read into memory.
pub struct LintInput {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    pub scope: FileScope,
    pub content: String,
}

/// Pass-1 output for one input file.
struct Analyzed {
    src: SourceFile,
    mdl: FileModel,
    diags: Vec<Diagnostic>,
}

/// Lints a set of in-memory files: per-file rules in parallel, then the
/// interprocedural flow/lock analyses over the whole set. Returns
/// sorted diagnostics.
pub fn lint_files(inputs: &[LintInput]) -> Vec<Diagnostic> {
    let analyzed = pass1(inputs);
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut models: Vec<FileModel> = Vec::with_capacity(analyzed.len());
    let mut srcs: Vec<SourceFile> = Vec::with_capacity(analyzed.len());
    for a in analyzed {
        diags.extend(a.diags);
        models.push(a.mdl);
        srcs.push(a.src);
    }
    let graph = callgraph::build(&models);
    let fx = effects::propagate(&models, &srcs, &graph);
    effects::check(&models, &srcs, &graph, &fx, &mut diags);
    locks::check(&models, &srcs, &mut diags);
    diagnostics::sort(&mut diags);
    diags
}

/// Pass 1, sharded across cores; results come back in input order.
fn pass1(inputs: &[LintInput]) -> Vec<Analyzed> {
    let shards = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(inputs.len().max(1));
    let mut slots: Vec<Option<Analyzed>> = Vec::with_capacity(inputs.len());
    slots.resize_with(inputs.len(), || None);
    if shards <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(analyze_one(&inputs[i]));
        }
    } else {
        let mut parts: Vec<&mut [Option<Analyzed>]> = Vec::new();
        let mut rest = slots.as_mut_slice();
        // Contiguous chunks; round-robin would shuffle slot ownership.
        let chunk = inputs.len().div_ceil(shards);
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            parts.push(head);
            rest = tail;
        }
        std::thread::scope(|s| {
            let mut offset = 0;
            for part in parts {
                let base = offset;
                offset += part.len();
                let inputs = &inputs[base..base + part.len()];
                s.spawn(move || {
                    for (slot, input) in part.iter_mut().zip(inputs) {
                        *slot = Some(analyze_one(input));
                    }
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|s| match s {
            Some(a) => a,
            // Every index is covered by exactly one contiguous chunk.
            None => unreachable!("shard left a slot unfilled"),
        })
        .collect()
}

fn analyze_one(input: &LintInput) -> Analyzed {
    let src = SourceFile::parse(&input.content);
    let mut diags = Vec::new();
    analyze_file(&input.rel_path, &input.scope, &src, &mut diags);
    let mdl = model::build(&input.rel_path, &input.scope, &src);
    Analyzed { src, mdl, diags }
}

/// Runs the full lint over the workspace at `root`. Returns sorted
/// diagnostics (empty = clean tree).
pub fn run_lint(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        collect_rs(&root.join(scan), &mut files)?;
    }
    files.sort();
    let mut inputs = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if EXCLUDES.iter().any(|e| rel.contains(e)) {
            continue;
        }
        let scope = classify(&rel);
        inputs.push(LintInput {
            rel_path: rel,
            scope,
            content: std::fs::read_to_string(path)?,
        });
    }
    let mut diags = lint_files(&inputs);
    layering::check_workspace(root, &mut diags);
    diagnostics::sort(&mut diags);
    Ok(diags)
}

/// Recursively collects `.rs` files (missing roots are fine).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(());
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scope of a workspace-relative path: which crate it belongs to and
/// whether it is library source or test/bench/example code.
pub fn classify(rel: &str) -> FileScope {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", krate, "src", ..] => FileScope {
            crate_name: crate_package_name(krate),
            kind: FileKind::LibSrc,
        },
        ["crates", krate, ..] => FileScope {
            crate_name: crate_package_name(krate),
            kind: FileKind::TestCode,
        },
        ["src", ..] => FileScope {
            crate_name: "tnb".to_string(),
            kind: FileKind::LibSrc,
        },
        _ => FileScope {
            crate_name: "tnb".to_string(),
            kind: FileKind::TestCode,
        },
    }
}

/// Package name of a `crates/<dir>` crate (all follow the `tnb-<dir>`
/// convention).
fn crate_package_name(dir: &str) -> String {
    format!("tnb-{dir}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let s = classify("crates/core/src/receiver.rs");
        assert_eq!(s.crate_name, "tnb-core");
        assert_eq!(s.kind, FileKind::LibSrc);
        let t = classify("crates/phy/tests/alloc_free.rs");
        assert_eq!(t.crate_name, "tnb-phy");
        assert_eq!(t.kind, FileKind::TestCode);
        let f = classify("src/lib.rs");
        assert_eq!(f.crate_name, "tnb");
        assert_eq!(f.kind, FileKind::LibSrc);
        let e = classify("examples/quickstart.rs");
        assert_eq!(e.kind, FileKind::TestCode);
    }

    #[test]
    fn parallel_pass1_preserves_input_order() {
        let inputs: Vec<LintInput> = (0..23)
            .map(|i| LintInput {
                rel_path: format!("crates/core/src/f{i}.rs"),
                scope: classify("crates/core/src/x.rs"),
                content: format!("fn f{i}() {{}}\n"),
            })
            .collect();
        let analyzed = pass1(&inputs);
        for (i, a) in analyzed.iter().enumerate() {
            assert_eq!(a.mdl.rel_path, format!("crates/core/src/f{i}.rs"));
        }
    }
}
