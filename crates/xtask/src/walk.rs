//! Workspace walking: maps every first-party `.rs` file to a
//! [`FileScope`] and runs the source rules plus the manifest layering
//! check. Vendored compat shims (`compat/`), build output (`target/`)
//! and the linter's own bad-snippet fixtures
//! (`crates/xtask/tests/fixtures/`) are out of scope.

use crate::diagnostics::{self, Diagnostic};
use crate::layering;
use crate::rules::{analyze_file, FileKind, FileScope};
use crate::source::SourceFile;
use std::path::{Path, PathBuf};

/// Directories under the workspace root that are scanned.
const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Path substrings that exclude a file from scanning.
const EXCLUDES: [&str; 3] = ["compat/", "target/", "crates/xtask/tests/fixtures/"];

/// Runs the full lint over the workspace at `root`. Returns sorted
/// diagnostics (empty = clean tree).
pub fn run_lint(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        collect_rs(&root.join(scan), &mut files)?;
    }
    files.sort();
    let mut diags = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if EXCLUDES.iter().any(|e| rel.contains(e)) {
            continue;
        }
        let scope = classify(&rel);
        let content = std::fs::read_to_string(path)?;
        let src = SourceFile::parse(&content);
        analyze_file(&rel, &scope, &src, &mut diags);
    }
    layering::check_workspace(root, &mut diags);
    diagnostics::sort(&mut diags);
    Ok(diags)
}

/// Recursively collects `.rs` files (missing roots are fine).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(());
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scope of a workspace-relative path: which crate it belongs to and
/// whether it is library source or test/bench/example code.
pub fn classify(rel: &str) -> FileScope {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", krate, "src", ..] => FileScope {
            crate_name: crate_package_name(krate),
            kind: FileKind::LibSrc,
        },
        ["crates", krate, ..] => FileScope {
            crate_name: crate_package_name(krate),
            kind: FileKind::TestCode,
        },
        ["src", ..] => FileScope {
            crate_name: "tnb".to_string(),
            kind: FileKind::LibSrc,
        },
        _ => FileScope {
            crate_name: "tnb".to_string(),
            kind: FileKind::TestCode,
        },
    }
}

/// Package name of a `crates/<dir>` crate (all follow the `tnb-<dir>`
/// convention).
fn crate_package_name(dir: &str) -> String {
    format!("tnb-{dir}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let s = classify("crates/core/src/receiver.rs");
        assert_eq!(s.crate_name, "tnb-core");
        assert_eq!(s.kind, FileKind::LibSrc);
        let t = classify("crates/phy/tests/alloc_free.rs");
        assert_eq!(t.crate_name, "tnb-phy");
        assert_eq!(t.kind, FileKind::TestCode);
        let f = classify("src/lib.rs");
        assert_eq!(f.crate_name, "tnb");
        assert_eq!(f.kind, FileKind::LibSrc);
        let e = classify("examples/quickstart.rs");
        assert_eq!(e.kind, FileKind::TestCode);
    }
}
