//! Diagnostic records and rendering (human text and machine JSON).

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Stable rule ID, e.g. `TNB-DET02`.
    pub rule: &'static str,
    pub message: String,
}

impl Diagnostic {
    /// CI-clickable `file:line: [RULE_ID] message` form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Sorts by (file, line, col, rule) for stable output.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

/// Renders the machine-readable report:
/// `{"violations": N, "rules": {id: count}, "diagnostics": [...]}`.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for d in diags {
        match counts.iter_mut().find(|(r, _)| *r == d.rule) {
            Some((_, n)) => *n += 1,
            None => counts.push((d.rule, 1)),
        }
    }
    counts.sort();
    let mut s = String::new();
    let _ = write!(s, "{{\"violations\":{},\"rules\":{{", diags.len());
    for (i, (rule, n)) in counts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{}:{}", json_str(rule), n);
    }
    s.push_str("},\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}}}",
            json_str(&d.file),
            d.line,
            d.col,
            json_str(d.rule),
            json_str(&d.message)
        );
    }
    s.push_str("]}");
    s
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_clickable() {
        let d = Diagnostic {
            file: "crates/core/src/receiver.rs".into(),
            line: 12,
            col: 5,
            rule: "TNB-DET02",
            message: "HashMap in decode path".into(),
        };
        assert_eq!(
            d.render(),
            "crates/core/src/receiver.rs:12: [TNB-DET02] HashMap in decode path"
        );
    }

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
