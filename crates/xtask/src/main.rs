//! `tnb-xtask` CLI.
//!
//! ```text
//! cargo run -p tnb-xtask -- lint [--json | --github] [--root <dir>]
//! cargo run -p tnb-xtask -- rules
//! ```
//!
//! `lint` exits 0 on a clean tree and 1 with `file:line: [RULE_ID]
//! message` diagnostics otherwise. `--json` switches stdout to the
//! machine-readable report; `--github` emits GitHub Actions
//! problem-matcher lines (`::error file=…,line=…,col=…::…`) so
//! violations annotate the PR diff. `rules` prints the rule table.

use std::path::PathBuf;
use std::process::ExitCode;

use tnb_xtask::{diagnostics, run_lint, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("rules") => {
            println!("{:<12} {:<16} summary", "rule", "group");
            for (id, group, summary) in RULES {
                println!("{id:<12} {group:<16} {summary}");
            }
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: tnb-xtask lint [--json | --github] [--root <dir>]");
    eprintln!("       tnb-xtask rules");
}

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut github = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--github" => github = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace this binary was built from, so
    // `cargo run -p tnb-xtask -- lint` works from any cwd.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });
    let started = std::time::Instant::now();
    let diags = match run_lint(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("tnb-xtask lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed();
    if json {
        println!("{}", diagnostics::to_json(&diags));
    } else if github {
        // GitHub Actions problem-matcher lines: the runner turns these
        // into inline annotations on the PR diff. Newlines would break
        // the single-line command protocol, so flatten the message.
        for d in &diags {
            println!(
                "::error file={},line={},col={}::[{}] {}",
                d.file,
                d.line,
                d.col,
                d.rule,
                d.message.replace('\n', " ")
            );
        }
        eprintln!(
            "tnb-xtask lint: {} violation(s) in {:.2?}",
            diags.len(),
            elapsed
        );
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        eprintln!(
            "tnb-xtask lint: {} violation(s) across {} rule(s) in {:.2?}",
            diags.len(),
            diags
                .iter()
                .map(|d| d.rule)
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            elapsed
        );
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
