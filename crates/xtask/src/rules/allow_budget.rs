//! Allow budget (TNB-ALLOW01): a bare `#[allow(...)]` silently erodes
//! every other gate, so each one must carry a justification comment —
//! trailing on the same line or on the line directly above. Applies
//! everywhere in the workspace, tests included.

use super::Ctx;
use crate::diagnostics::Diagnostic;

pub fn check(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    for (i, line) in ctx.src.lines.iter().enumerate() {
        let Some(col) = find_allow_attr(&line.code) else {
            continue;
        };
        // A doc comment (`///`/`//!`, which strips to a comment starting
        // with `/` or `!`) above the attribute is the item's docs, not a
        // justification; only a plain `//` comment counts there.
        let plain_comment_above = i > 0 && {
            let above = ctx.src.lines[i - 1].comment.trim();
            !above.is_empty() && !above.starts_with('/') && !above.starts_with('!')
        };
        let justified = !line.comment.trim().is_empty() || plain_comment_above;
        if justified {
            continue;
        }
        ctx.emit(
            diags,
            i,
            col,
            "TNB-ALLOW01",
            "#[allow(...)] without a justification comment (same line or the line above)"
                .to_string(),
        );
    }
}

/// Column of `#[allow(` / `#![allow(` on the line, if any.
fn find_allow_attr(code: &str) -> Option<usize> {
    for pat in ["#[allow(", "#![allow("] {
        if let Some(col) = code.find(pat) {
            return Some(col);
        }
    }
    None
}
