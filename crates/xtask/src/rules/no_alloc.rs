//! No-alloc hot path (TNB-ALLOC01): inside a `// tnb-lint: no_alloc`
//! region — the warm `DspScratch` symbol path through
//! demodulate/sync/sigcalc/thrive — no allocating constructors or
//! collecting adapters may appear. Amortized growth of caller-owned
//! buffers (`push`/`extend` into warm capacity) is allowed; fresh
//! allocations per symbol are not.

use super::{token_cols, Ctx};
use crate::diagnostics::Diagnostic;

/// Allocating constructors and collecting adapters. Doubles as the
/// fresh-allocation seed table of the interprocedural effect analysis
/// (`crate::effects`): amortized growth of warm buffers (`.push(`,
/// `.extend(`, `.resize(`) is deliberately absent — the repo's hot-path
/// contract allows it.
pub const ALLOC_TOKENS: [&str; 12] = [
    "vec!",
    "Vec::new",
    "Vec::with_capacity",
    ".to_vec()",
    ".collect()",
    ".collect::<",
    "Box::new",
    "String::new",
    "String::from",
    "format!",
    ".to_string()",
    ".to_owned()",
];

pub fn check(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    for (i, line) in ctx.src.lines.iter().enumerate() {
        if !line.no_alloc || line.in_test {
            continue;
        }
        for tok in ALLOC_TOKENS {
            for col in token_cols(&line.code, tok) {
                ctx.emit(
                    diags,
                    i,
                    col,
                    "TNB-ALLOC01",
                    format!(
                        "`{tok}` allocates inside a `tnb-lint: no_alloc` hot-path region; \
                         reuse a scratch buffer or hoist the allocation out of the symbol loop"
                    ),
                );
            }
        }
    }
}
