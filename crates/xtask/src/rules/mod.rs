//! The rule registry and the per-file analysis driver.
//!
//! Every rule has a stable ID (`TNB-…`, printed in brackets so CI logs
//! are greppable), belongs to a *group* (the name accepted by
//! `// tnb-lint: allow(<group>)` alongside the specific ID), and scans
//! the preprocessed [`SourceFile`] line by line. Escape hatches require
//! a `-- <reason>`; a reasonless hatch is itself an error (TNB-LINT01).

pub mod allow_budget;
pub mod determinism;
pub mod no_alloc;
pub mod panic_free;
pub mod simd_hygiene;
pub mod unsafe_hygiene;

use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;

/// What kind of target a file belongs to, which decides rule scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/<c>/src/**` or the facade `src/**` — library code; all
    /// rules apply (outside `#[cfg(test)]` regions).
    LibSrc,
    /// Tests, benches, examples — only the hygiene rules (unsafe,
    /// allow-budget, annotation validity) apply.
    TestCode,
}

/// Per-file lint scope: which crate the file belongs to and its kind.
#[derive(Debug, Clone)]
pub struct FileScope {
    /// Package name, e.g. `tnb-core` (`tnb` for the facade crate).
    pub crate_name: String,
    pub kind: FileKind,
}

/// Crates whose decode path must stay bit-deterministic across worker
/// counts: no wall clock, no iteration-order-hazard collections, no
/// shared `Cell` metrics outside `tnb-metrics`.
pub const DETERMINISM_CRATES: [&str; 5] = [
    "tnb-dsp",
    "tnb-phy",
    "tnb-core",
    "tnb-gateway",
    "tnb-deploy",
];

/// Library crates that must never panic on hostile input (superset of
/// the CI clippy `unwrap_used`/`expect_used` gate).
pub const PANIC_FREE_CRATES: [&str; 7] = [
    "tnb-dsp",
    "tnb-phy",
    "tnb-channel",
    "tnb-metrics",
    "tnb-core",
    "tnb-gateway",
    "tnb-deploy",
];

/// One registry entry: (ID, group, summary).
pub const RULES: [(&str, &str, &str); 19] = [
    (
        "TNB-DET01",
        "determinism",
        "wall clock (Instant::now / SystemTime) in a decode-path crate",
    ),
    (
        "TNB-DET02",
        "determinism",
        "HashMap/HashSet (iteration-order hazard) in a decode-path crate",
    ),
    (
        "TNB-DET03",
        "determinism",
        "Cell-based metrics outside tnb-metrics in a decode-path crate",
    ),
    (
        "TNB-ALLOC01",
        "no_alloc",
        "heap allocation inside a `tnb-lint: no_alloc` hot-path region",
    ),
    (
        "TNB-PANIC01",
        "panic_free",
        "panic!/todo!/unimplemented!/unreachable! in a panic-free crate",
    ),
    (
        "TNB-PANIC02",
        "panic_free",
        "assert!/assert_eq!/assert_ne! in a panic-free crate (debug_assert* is fine)",
    ),
    (
        "TNB-PANIC03",
        "panic_free",
        ".unwrap()/.expect() in a panic-free crate",
    ),
    (
        "TNB-PANIC04",
        "panic_free",
        "range slice indexing in a `no_alloc` hot-path region (use .get(..))",
    ),
    (
        "TNB-UNSAFE01",
        "unsafe_hygiene",
        "`unsafe` without a `// SAFETY:` comment",
    ),
    (
        "TNB-SIMD01",
        "simd_hygiene",
        "`#[target_feature]` kernel outside a `tnb-lint: no_alloc` region",
    ),
    (
        "TNB-LAYER01",
        "layering",
        "crate dependency outside the allowed layering DAG",
    ),
    ("TNB-LAYER02", "layering", "crate dependency cycle"),
    (
        "TNB-ALLOW01",
        "allow_budget",
        "bare #[allow(...)] without a justification comment",
    ),
    (
        "TNB-LINT01",
        "lint_annotations",
        "malformed tnb-lint annotation (missing reason, unknown rule/directive)",
    ),
    (
        "TNB-FLOW01",
        "flow",
        "transitive allocation on a path from a `tnb-lint: no_alloc_root` fn",
    ),
    (
        "TNB-FLOW02",
        "flow",
        "transitive panic reachable from a panic-free crate's public API",
    ),
    (
        "TNB-FLOW03",
        "flow",
        "call whose callee transitively reads the clock / iterates hash collections in a decode-path crate",
    ),
    (
        "TNB-LOCK01",
        "locking",
        "lock-order cycle (potential deadlock), including re-acquiring a held lock",
    ),
    (
        "TNB-LOCK02",
        "locking",
        "blocking call (IO/recv/join/sleep) while a lock guard is live",
    ),
];

/// Group name of a rule ID (empty for unknown IDs).
pub fn group_of(rule_id: &str) -> &'static str {
    RULES
        .iter()
        .find(|(id, _, _)| *id == rule_id)
        .map(|(_, g, _)| *g)
        .unwrap_or("")
}

/// True when `name` is a known rule ID or group name.
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|(id, g, _)| *id == name || *g == name)
}

/// Context handed to every per-line rule.
pub struct Ctx<'a> {
    pub file: &'a str,
    pub scope: &'a FileScope,
    pub src: &'a SourceFile,
}

impl Ctx<'_> {
    /// Emits a diagnostic unless an escape hatch covers the line.
    /// `line`/`col` are 0-based here; diagnostics are 1-based.
    pub fn emit(
        &self,
        diags: &mut Vec<Diagnostic>,
        line: usize,
        col: usize,
        rule: &'static str,
        message: String,
    ) {
        if self.src.is_allowed(line, rule, group_of(rule)) {
            return;
        }
        diags.push(Diagnostic {
            file: self.file.to_string(),
            line: line + 1,
            col: col + 1,
            rule,
            message,
        });
    }
}

/// Runs every source-level rule over one preprocessed file.
pub fn analyze_file(file: &str, scope: &FileScope, src: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let ctx = Ctx { file, scope, src };
    // Annotation validity is checked everywhere, first: a malformed
    // escape hatch must not silently disable another rule.
    for bad in &src.bad_directives {
        ctx.emit(diags, bad.line, 0, "TNB-LINT01", bad.message.clone());
    }
    for a in &src.allows {
        for r in &a.rules {
            if !is_known_rule(r) {
                ctx.emit(
                    diags,
                    a.at_line,
                    0,
                    "TNB-LINT01",
                    format!("`tnb-lint: allow({r})` names an unknown rule or group"),
                );
            }
        }
    }
    unsafe_hygiene::check(&ctx, diags);
    simd_hygiene::check(&ctx, diags);
    allow_budget::check(&ctx, diags);
    no_alloc::check(&ctx, diags);
    if scope.kind == FileKind::LibSrc {
        if DETERMINISM_CRATES.contains(&scope.crate_name.as_str()) {
            determinism::check(&ctx, diags);
        }
        if PANIC_FREE_CRATES.contains(&scope.crate_name.as_str()) {
            panic_free::check(&ctx, diags);
        }
    }
}

/// Finds `token` occurrences in `code` on identifier boundaries: the
/// characters on both sides must not be identifier characters (so
/// `assert!` does not match `debug_assert!`, `Cell<` does not match
/// `RefCell<`, and `unsafe` does not match `unsafe_hygiene`). Each
/// boundary check only applies when the token's own edge is an
/// identifier character — `.unwrap()` after an identifier receiver
/// (`opt.unwrap()`) is a match, since the `.` already separates.
/// Returns 0-based columns.
pub fn token_cols(code: &str, token: &str) -> Vec<usize> {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut cols = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        let lead = !token.chars().next().is_some_and(is_ident)
            || at == 0
            || !is_ident(bytes[at - 1] as char);
        let end = at + token.len();
        let trail = !token.chars().next_back().is_some_and(is_ident)
            || end >= bytes.len()
            || !is_ident(bytes[end] as char);
        if lead && trail {
            cols.push(at);
        }
        from = at + token.len().max(1);
    }
    cols
}
