//! Unsafe hygiene (TNB-UNSAFE01): every line introducing `unsafe` —
//! blocks, fns, impls, trait declarations — must carry a `// SAFETY:`
//! comment on the same line or within the three preceding lines, stating
//! the invariant that makes the code sound. Applies everywhere in the
//! workspace, tests included.

use super::{token_cols, Ctx};
use crate::diagnostics::Diagnostic;

/// How many preceding lines may hold the `SAFETY:` comment.
const LOOKBACK: usize = 3;

pub fn check(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    for (i, line) in ctx.src.lines.iter().enumerate() {
        let cols = token_cols(&line.code, "unsafe");
        if cols.is_empty() {
            continue;
        }
        let covered = std::iter::once(i)
            .chain((i.saturating_sub(LOOKBACK)..i).rev())
            .any(|j| ctx.src.lines[j].comment.contains("SAFETY:"));
        if covered {
            continue;
        }
        ctx.emit(
            diags,
            i,
            cols[0],
            "TNB-UNSAFE01",
            "`unsafe` without a `// SAFETY:` comment stating the soundness invariant".to_string(),
        );
    }
}
