//! Determinism rules (TNB-DET01..03): the serial and parallel receivers
//! must produce byte-identical output on the same trace, so the
//! decode-path crates must not read the wall clock, iterate
//! hash-randomized collections, or keep `Cell`-based metrics outside
//! the `tnb-metrics` crate (whose per-worker sinks are merged along the
//! determinism boundary).

use super::{token_cols, Ctx};
use crate::diagnostics::Diagnostic;

/// Wall-clock reads; also the reads-clock seed table of the
/// interprocedural effect analysis (`crate::effects`).
pub const CLOCK_TOKENS: [&str; 3] = ["Instant::now", "SystemTime", "std::time::Instant"];
/// Hash-randomized collections; also the nondet-order effect seeds.
pub const HASH_TOKENS: [&str; 2] = ["HashMap", "HashSet"];
const CELL_TOKENS: [&str; 2] = ["Cell<", "Cell::new"];

pub fn check(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    for (i, line) in ctx.src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for tok in CLOCK_TOKENS {
            for col in token_cols(&line.code, tok) {
                ctx.emit(
                    diags,
                    i,
                    col,
                    "TNB-DET01",
                    format!(
                        "`{tok}` reads the wall clock in decode-path crate {}; route timing \
                         through tnb-metrics (disabled sinks never touch the clock)",
                        ctx.scope.crate_name
                    ),
                );
            }
        }
        for tok in HASH_TOKENS {
            for col in token_cols(&line.code, tok) {
                ctx.emit(
                    diags,
                    i,
                    col,
                    "TNB-DET02",
                    format!(
                        "`{tok}` has randomized iteration order; use BTreeMap/BTreeSet or an \
                         index-keyed Vec in decode-path crate {}",
                        ctx.scope.crate_name
                    ),
                );
            }
        }
        for tok in CELL_TOKENS {
            for col in token_cols(&line.code, tok) {
                ctx.emit(
                    diags,
                    i,
                    col,
                    "TNB-DET03",
                    format!(
                        "`{tok}` in decode-path crate {}: Cell-based metrics belong in \
                         tnb-metrics, whose sinks are absorbed deterministically after join",
                        ctx.scope.crate_name
                    ),
                );
            }
        }
    }
}
