//! Panic-freedom rules (TNB-PANIC01..04) for the five panic-free
//! library crates: hostile input must degrade (clamp, `Option`,
//! `DecodeOutcome::Degraded`), never unwind. This is the static superset
//! of the CI clippy gate (`-D clippy::unwrap_used -D clippy::expect_used`):
//! it also catches panic macros, release-mode asserts, and — inside
//! `no_alloc` hot-path regions, where a panic would poison a whole
//! worker batch — unguarded range slice indexing.

use super::{token_cols, Ctx};
use crate::diagnostics::Diagnostic;

/// Unconditional panic macros; also the may-panic seed table of the
/// interprocedural effect analysis (`crate::effects`).
pub const PANIC_MACROS: [&str; 4] = ["panic!", "todo!", "unimplemented!", "unreachable!"];
const ASSERT_MACROS: [&str; 3] = ["assert!", "assert_eq!", "assert_ne!"];
/// Panicking Option/Result escape hatches; also may-panic effect seeds.
pub const UNWRAP_TOKENS: [&str; 2] = [".unwrap()", ".expect("];

pub fn check(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    for (i, line) in ctx.src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for tok in PANIC_MACROS {
            for col in token_cols(&line.code, tok) {
                ctx.emit(
                    diags,
                    i,
                    col,
                    "TNB-PANIC01",
                    format!(
                        "`{tok}` in panic-free crate {}; degrade gracefully instead",
                        ctx.scope.crate_name
                    ),
                );
            }
        }
        for tok in ASSERT_MACROS {
            for col in token_cols(&line.code, tok) {
                ctx.emit(
                    diags,
                    i,
                    col,
                    "TNB-PANIC02",
                    format!(
                        "`{tok}` aborts release builds in panic-free crate {}; use \
                         debug_{tok} or return an error",
                        ctx.scope.crate_name
                    ),
                );
            }
        }
        for tok in UNWRAP_TOKENS {
            for col in token_cols(&line.code, tok) {
                ctx.emit(
                    diags,
                    i,
                    col,
                    "TNB-PANIC03",
                    format!(
                        "`{tok}` in panic-free crate {}; match or use unwrap_or/`?`",
                        ctx.scope.crate_name
                    ),
                );
            }
        }
        if line.no_alloc {
            for col in range_index_cols(&line.code) {
                ctx.emit(
                    diags,
                    i,
                    col,
                    "TNB-PANIC04",
                    "range slice indexing can panic mid-batch in a hot-path region; use \
                     .get(a..b) and degrade on None"
                        .to_string(),
                );
            }
        }
    }
}

/// 0-based columns of range-index expressions `expr[a..b]` (also `[..b]`,
/// `[a..]`, `..=` forms). The bare full-range `[..]` cannot panic and is
/// skipped; array literals / attributes (`#[…]`, `= […]`) are excluded by
/// requiring an index-expression context before the bracket.
fn range_index_cols(code: &str) -> Vec<usize> {
    let b: Vec<char> = code.chars().collect();
    let mut cols = Vec::new();
    for (i, &c) in b.iter().enumerate() {
        if c != '[' {
            continue;
        }
        // Index expression: the bracket follows an identifier char, `)`,
        // or `]` (possibly a method-call result or nested index).
        let Some(&prev) = b[..i].iter().rev().find(|c| !c.is_whitespace()) else {
            continue;
        };
        if !(prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']') {
            continue;
        }
        // Find the matching `]` on this line.
        let mut depth = 0usize;
        let mut end = None;
        for (j, &cj) in b.iter().enumerate().skip(i) {
            match cj {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(end) = end else { continue };
        let inner: String = b[i + 1..end].iter().collect();
        let trimmed = inner.trim();
        if trimmed == ".." {
            continue; // full-range never panics
        }
        if trimmed.contains("..") {
            cols.push(i);
        }
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::range_index_cols;

    #[test]
    fn detects_range_indexing() {
        assert_eq!(range_index_cols("let a = &xs[1..n];").len(), 1);
        assert_eq!(range_index_cols("xs[..m].iter()").len(), 1);
        assert_eq!(range_index_cols("xs[k]").len(), 0);
        assert_eq!(range_index_cols("&xs[..]").len(), 0);
        assert_eq!(range_index_cols("#[cfg(feature = \"x\")]").len(), 0);
        assert_eq!(range_index_cols("let r = 0..n;").len(), 0);
        assert_eq!(range_index_cols("f(a)[i..j]").len(), 1);
    }
}
