//! SIMD kernel hygiene (TNB-SIMD01): every `#[target_feature(...)]`
//! function must sit inside a `// tnb-lint: no_alloc` region.
//!
//! `target_feature` marks a vector kernel on the per-symbol hot path;
//! placing it inside a `no_alloc` region makes TNB-ALLOC01/TNB-PANIC04
//! police its body, so a SIMD rewrite cannot quietly reintroduce
//! per-symbol allocations or panicking slice indexing that the scalar
//! path already eliminated.

use super::{Ctx, FileKind};
use crate::diagnostics::Diagnostic;

pub fn check(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    if ctx.scope.kind != FileKind::LibSrc {
        return;
    }
    for (i, line) in ctx.src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let Some(col) = line.code.find("#[target_feature") else {
            continue;
        };
        if !line.no_alloc {
            ctx.emit(
                diags,
                i,
                col,
                "TNB-SIMD01",
                "`#[target_feature]` kernel outside a `tnb-lint: no_alloc` region; \
                 annotate the region so the hot-path allocation and indexing rules \
                 cover the vector body"
                    .to_string(),
            );
        }
    }
}
