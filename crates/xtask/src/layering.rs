//! Layering rules (TNB-LAYER01/02): the crate-dependency DAG is part of
//! the architecture — `tnb-dsp` sits at the bottom, `tnb-core` may see
//! only the substrate (`dsp`, `phy`) plus `tnb-metrics`, and the
//! application crates (`cli`, `sim`, `bench`) must never leak into the
//! libraries. Parsed straight from each crate's `Cargo.toml`
//! `[dependencies]` section (dev-dependencies are exempt: tests may
//! reach across layers).

use crate::diagnostics::Diagnostic;
use std::path::Path;

/// Allowed `tnb-*` dependencies per crate. A crate absent from this
/// table may depend on any library crate but never on another
/// application crate listed in [`APP_CRATES`].
const ALLOWED: [(&str, &[&str]); 10] = [
    ("tnb-dsp", &[]),
    ("tnb-metrics", &[]),
    ("tnb-xtask", &[]),
    ("tnb-phy", &["tnb-dsp"]),
    ("tnb-channel", &["tnb-dsp", "tnb-phy"]),
    ("tnb-core", &["tnb-dsp", "tnb-phy", "tnb-metrics"]),
    ("tnb-baselines", &["tnb-dsp", "tnb-phy", "tnb-core"]),
    (
        "tnb-gateway",
        &[
            "tnb-dsp",
            "tnb-phy",
            "tnb-channel",
            "tnb-core",
            "tnb-metrics",
        ],
    ),
    (
        "tnb-sim",
        &[
            "tnb-dsp",
            "tnb-phy",
            "tnb-channel",
            "tnb-core",
            "tnb-baselines",
            "tnb-gateway",
            "tnb-metrics",
        ],
    ),
    (
        "tnb-deploy",
        &[
            "tnb-dsp",
            "tnb-phy",
            "tnb-channel",
            "tnb-core",
            "tnb-gateway",
            "tnb-sim",
        ],
    ),
];

/// Application/tooling crates that must never appear under any other
/// crate's `[dependencies]`. (`tnb-sim` is a library the app crates may
/// use; the [`ALLOWED`] table keeps it out of the decode path.)
const APP_CRATES: [&str; 3] = ["tnb-cli", "tnb-bench", "tnb-xtask"];

/// One parsed manifest: package name and its `tnb-*` dependencies with
/// the manifest line each was declared on (1-based).
#[derive(Debug)]
pub struct Manifest {
    pub file: String,
    pub package: String,
    pub deps: Vec<(String, usize)>,
}

/// Parses `name = …` dependency entries of the `[dependencies]` section
/// and the `[package] name`. A deliberately small TOML subset — enough
/// for this workspace's manifests.
pub fn parse_manifest(file: &str, content: &str) -> Option<Manifest> {
    let mut package = None;
    let mut deps = Vec::new();
    let mut section = "";
    for (i, raw) in content.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            section = line;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        match section {
            "[package]" if key == "name" => {
                package = Some(value.trim().trim_matches('"').to_string());
            }
            "[dependencies]" if key.starts_with("tnb-") => {
                // `tnb-dsp.workspace = true` and `tnb-dsp = {...}` both
                // declare a dependency on `tnb-dsp`.
                let name = key.split('.').next().unwrap_or(key);
                deps.push((name.to_string(), i + 1));
            }
            _ => {}
        }
    }
    Some(Manifest {
        file: file.to_string(),
        package: package?,
        deps,
    })
}

/// Checks every manifest against the allowed DAG and for cycles.
pub fn check(manifests: &[Manifest], diags: &mut Vec<Diagnostic>) {
    for m in manifests {
        let allowed = ALLOWED
            .iter()
            .find(|(name, _)| *name == m.package)
            .map(|(_, deps)| *deps);
        for (dep, line) in &m.deps {
            let ok = match allowed {
                Some(list) => list.contains(&dep.as_str()),
                // Unlisted crates (cli, bench, facade): anything but the
                // application crates.
                None => !APP_CRATES.contains(&dep.as_str()),
            };
            if !ok {
                diags.push(Diagnostic {
                    file: m.file.clone(),
                    line: *line,
                    col: 1,
                    rule: "TNB-LAYER01",
                    message: format!(
                        "{} must not depend on {dep} (allowed: {})",
                        m.package,
                        allowed
                            .map(|l| if l.is_empty() {
                                "none".to_string()
                            } else {
                                l.join(", ")
                            })
                            .unwrap_or_else(|| "any library crate".to_string())
                    ),
                });
            }
        }
    }
    // Cycle check over the declared graph (independent of the allowlist,
    // which is itself acyclic: a future edit to ALLOWED cannot smuggle a
    // cycle past this).
    for m in manifests {
        let mut stack = vec![(m.package.clone(), vec![m.package.clone()])];
        while let Some((at, path)) = stack.pop() {
            let Some(node) = manifests.iter().find(|x| x.package == at) else {
                continue;
            };
            for (dep, line) in &node.deps {
                if *dep == m.package {
                    diags.push(Diagnostic {
                        file: node.file.clone(),
                        line: *line,
                        col: 1,
                        rule: "TNB-LAYER02",
                        message: format!("dependency cycle: {} -> {dep}", path.join(" -> ")),
                    });
                } else if !path.contains(dep) {
                    let mut p = path.clone();
                    p.push(dep.clone());
                    stack.push((dep.clone(), p));
                }
            }
        }
    }
}

/// Reads and checks all `crates/*/Cargo.toml` manifests under `root`.
pub fn check_workspace(root: &Path, diags: &mut Vec<Diagnostic>) {
    let mut manifests = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return;
    };
    let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();
    for dir in dirs {
        let manifest_path = dir.join("Cargo.toml");
        let Ok(content) = std::fs::read_to_string(&manifest_path) else {
            continue;
        };
        let rel = manifest_path
            .strip_prefix(root)
            .unwrap_or(&manifest_path)
            .display()
            .to_string();
        if let Some(m) = parse_manifest(&rel, &content) {
            manifests.push(m);
        }
    }
    check(&manifests, diags);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_package_and_tnb_deps() {
        let m = parse_manifest(
            "crates/core/Cargo.toml",
            "[package]\nname = \"tnb-core\"\n[dependencies]\ntnb-dsp.workspace = true\nrand = \"1\"\n[dev-dependencies]\ntnb-channel.workspace = true\n",
        )
        .unwrap();
        assert_eq!(m.package, "tnb-core");
        assert_eq!(m.deps.len(), 1);
        assert_eq!(m.deps[0].0, "tnb-dsp");
    }
}
