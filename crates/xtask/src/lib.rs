//! `tnb-xtask`: dependency-free workspace tooling for the TnB repo.
//!
//! The `lint` subcommand is a line/token-level static analyzer enforcing
//! the repo invariants clippy cannot express — serial/parallel decode
//! determinism, the zero-allocation `DspScratch` symbol path, panic-free
//! library crates, unsafe hygiene, the crate layering DAG, and a
//! justification budget for `#[allow]`s. See `DESIGN.md` ("Static
//! analysis & enforced invariants") for the rule table and escape-hatch
//! syntax, and `crates/xtask/tests/fixtures/` for one minimal bad
//! snippet per rule.

pub mod callgraph;
pub mod diagnostics;
pub mod effects;
pub mod layering;
pub mod locks;
pub mod model;
pub mod rules;
pub mod source;
pub mod walk;

pub use diagnostics::Diagnostic;
pub use rules::{analyze_file, FileKind, FileScope, RULES};
pub use source::SourceFile;
pub use walk::{classify, lint_files, run_lint, LintInput};

/// Analyzes a single in-memory file under `scope` — the entry point the
/// golden-fixture suite drives. Routed through [`lint_files`] so the
/// interprocedural flow/lock rules run too (over the one-file graph).
pub fn analyze_source(file: &str, content: &str, scope: &FileScope) -> Vec<Diagnostic> {
    lint_files(&[LintInput {
        rel_path: file.to_string(),
        scope: scope.clone(),
        content: content.to_string(),
    }])
}
