//! Lexical preprocessing of a Rust source file for the line/token-level
//! rules: comment and string-literal stripping, `#[cfg(test)]` region
//! detection, and `tnb-lint` annotation parsing.
//!
//! The rules never see raw text — they see [`Line::code`], where comment
//! bodies and string/char-literal contents have been blanked with spaces
//! (delimiters are kept so columns line up with the original file), and
//! [`Line::comment`], the concatenated comment text of the line (where
//! `// SAFETY:` and `// tnb-lint:` annotations live).

/// One preprocessed source line.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code with comments and literal contents blanked; same length and
    /// column positions as the raw line.
    pub code: String,
    /// Comment text carried by this line (line comments and any block
    /// comment content crossing it), concatenated.
    pub comment: String,
    /// Inside a `#[cfg(test)]` item (test module, test-only fn/use).
    pub in_test: bool,
    /// Inside a `// tnb-lint: no_alloc` annotated region.
    pub no_alloc: bool,
}

/// A parsed `tnb-lint: allow(rule, ...) -- reason` escape hatch.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule IDs or group names being allowed.
    pub rules: Vec<String>,
    /// Justification text after `--` (empty when missing — an error).
    pub reason: String,
    /// Line (0-based) the allowance applies to: the annotation's own line
    /// when it trails code, otherwise the next line carrying code.
    pub target_line: usize,
    /// Line (0-based) the annotation itself is written on.
    pub at_line: usize,
}

/// A malformed `tnb-lint:` directive (unknown verb, missing reason, …).
#[derive(Debug, Clone)]
pub struct BadDirective {
    pub line: usize,
    pub message: String,
}

/// A fully preprocessed source file.
#[derive(Debug, Default)]
pub struct SourceFile {
    pub lines: Vec<Line>,
    pub allows: Vec<Allow>,
    pub bad_directives: Vec<BadDirective>,
    /// Lines (0-based) carrying a `tnb-lint: no_alloc_root` directive.
    /// The fn item the directive covers is the interprocedural
    /// allocation root the effect analysis walks from.
    pub roots: Vec<usize>,
}

impl SourceFile {
    /// Preprocesses `content`.
    pub fn parse(content: &str) -> SourceFile {
        let mut lines = strip(content);
        mark_cfg_test_regions(&mut lines);
        let (allows, bad_directives, roots) = parse_directives(&mut lines);
        SourceFile {
            lines,
            allows,
            bad_directives,
            roots,
        }
    }

    /// True when an allowance for `rule` (by ID or by group name) covers
    /// `line` (0-based).
    pub fn is_allowed(&self, line: usize, rule_id: &str, group: &str) -> bool {
        self.allows.iter().any(|a| {
            a.target_line == line
                && !a.reason.is_empty()
                && a.rules.iter().any(|r| r == rule_id || r == group)
        })
    }
}

/// Lexer state carried across lines.
enum State {
    Normal,
    /// Nesting depth of `/* */` (Rust block comments nest).
    Block(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string literal closed by `"` + this many `#`s.
    RawStr(u32),
}

/// Splits `content` into [`Line`]s with comments and literal bodies
/// blanked. Column positions are preserved exactly.
fn strip(content: &str) -> Vec<Line> {
    let mut out: Vec<Line> = Vec::new();
    let mut state = State::Normal;
    for raw in content.lines() {
        let mut line = Line::default();
        let b: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < b.len() {
            let c = b[i];
            match state {
                State::Normal => {
                    if c == '/' && b.get(i + 1) == Some(&'/') {
                        line.comment.push_str(&raw_tail(&b, i + 2));
                        line.code.extend(std::iter::repeat_n(' ', b.len() - i));
                        i = b.len();
                    } else if c == '/' && b.get(i + 1) == Some(&'*') {
                        state = State::Block(1);
                        line.code.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        state = State::Str;
                        line.code.push('"');
                        i += 1;
                    } else if let Some((hashes, prefix)) = raw_string_start(&line.code, &b, i) {
                        // r"…" / r#"…"# / br"…" / br#"…"# raw (byte)
                        // string: skip to the opening quote, blanking
                        // the prefix.
                        let skip = prefix + hashes as usize + 1; // r/br, #s, "
                        line.code.extend(std::iter::repeat_n(' ', skip));
                        state = State::RawStr(hashes);
                        i += skip;
                    } else if c == '\'' {
                        // Char literal vs lifetime: a backslash or a
                        // closing quote two chars on means a literal.
                        if b.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: blank to the closing '.
                            let mut j = i + 2;
                            while j < b.len() && b[j] != '\'' {
                                j += 1;
                            }
                            let end = (j + 1).min(b.len());
                            line.code.extend(std::iter::repeat_n(' ', end - i));
                            i = end;
                        } else if b.get(i + 2) == Some(&'\'') {
                            line.code.push_str("   ");
                            i += 3;
                        } else {
                            // Lifetime: keep the tick, scan on.
                            line.code.push('\'');
                            i += 1;
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
                State::Block(depth) => {
                    if c == '*' && b.get(i + 1) == Some(&'/') {
                        state = if depth > 1 {
                            State::Block(depth - 1)
                        } else {
                            State::Normal
                        };
                        line.code.push_str("  ");
                        i += 2;
                    } else if c == '/' && b.get(i + 1) == Some(&'*') {
                        state = State::Block(depth + 1);
                        line.code.push_str("  ");
                        i += 2;
                    } else {
                        line.comment.push(c);
                        line.code.push(' ');
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        line.code.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        state = State::Normal;
                        line.code.push('"');
                        i += 1;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' && hashes_follow(&b, i + 1, hashes) {
                        state = State::Normal;
                        let skip = 1 + hashes as usize;
                        line.code.extend(std::iter::repeat_n(' ', skip));
                        i += skip;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        // Strings and block comments may span lines: `state` carries over.
        out.push(line);
    }
    out
}

fn raw_tail(b: &[char], from: usize) -> String {
    b[from.min(b.len())..].iter().collect()
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// If position `i` starts a raw (byte) string literal — `r"`, `r#"`,
/// `br"`, `br#"` — returns `(hashes, prefix_len)` where `prefix_len`
/// counts the `r` / `br` prefix characters. Identifiers ending in `r`
/// (`attr"…"` cannot happen, but `macro_r#"` must not) are excluded by
/// requiring a non-identifier character before the prefix.
fn raw_string_start(code_so_far: &str, b: &[char], i: usize) -> Option<(u32, usize)> {
    match b.get(i) {
        Some('r') if !prev_is_ident(code_so_far) => raw_string_hashes(b, i).map(|h| (h, 1)),
        Some('b') if b.get(i + 1) == Some(&'r') && !prev_is_ident(code_so_far) => {
            raw_string_hashes(b, i + 1).map(|h| (h, 2))
        }
        _ => None,
    }
}

/// If `b[i] == 'r'` starts a raw string, the number of `#`s, else `None`.
fn raw_string_hashes(b: &[char], i: usize) -> Option<u32> {
    let mut j = i + 1;
    let mut hashes = 0u32;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (b.get(j) == Some(&'"')).then_some(hashes)
}

fn hashes_follow(b: &[char], from: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| b.get(from + k) == Some(&'#'))
}

/// Marks every line belonging to a `#[cfg(test)]` item (the attribute,
/// any stacked attributes, and the item's body through its closing brace
/// or terminating semicolon).
fn mark_cfg_test_regions(lines: &mut [Line]) {
    let starts: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.code.contains("cfg(test") && l.code.contains("#["))
        .map(|(i, _)| i)
        .collect();
    for s in starts {
        let end = item_region_end(lines, s);
        for l in lines.iter_mut().take(end + 1).skip(s) {
            l.in_test = true;
        }
    }
}

/// End line (0-based, inclusive) of the item starting at/after `start`:
/// scans forward for the first `{` and returns the line of its matching
/// `}`, or the line of a `;` seen before any brace (use/extern items).
/// Falls back to `start` itself for malformed input.
pub(crate) fn item_region_end(lines: &[Line], start: usize) -> usize {
    let mut depth: i64 = 0;
    let mut opened = false;
    for (li, line) in lines.iter().enumerate().skip(start) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth <= 0 {
                        return li;
                    }
                }
                ';' if !opened && depth == 0 => return li,
                _ => {}
            }
        }
    }
    lines.len().saturating_sub(1).max(start)
}

/// Parses all `tnb-lint:` directives, marking `no_alloc` /
/// `no_alloc_root` regions and collecting `allow(...)` escape hatches.
fn parse_directives(lines: &mut [Line]) -> (Vec<Allow>, Vec<BadDirective>, Vec<usize>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    let mut roots = Vec::new();
    let n = lines.len();
    for i in 0..n {
        let comment = lines[i].comment.clone();
        // Only a comment *starting* with the marker is a directive; prose
        // mentioning the syntax (doc comments start with `/` or `!` after
        // stripping, and mid-sentence mentions are not at the start) is
        // not parsed.
        let Some(directive) = comment
            .trim_start()
            .strip_prefix("tnb-lint:")
            .map(str::trim)
        else {
            continue;
        };
        if let Some(rest) = directive.strip_prefix("allow(") {
            let Some(close) = rest.find(')') else {
                bad.push(BadDirective {
                    line: i,
                    message: "malformed `tnb-lint: allow(...)`: missing `)`".into(),
                });
                continue;
            };
            let rules: Vec<String> = rest[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let after = rest[close + 1..].trim();
            let reason = after.strip_prefix("--").map(str::trim).unwrap_or("");
            if rules.is_empty() {
                bad.push(BadDirective {
                    line: i,
                    message: "`tnb-lint: allow()` names no rules".into(),
                });
                continue;
            }
            if reason.is_empty() {
                bad.push(BadDirective {
                    line: i,
                    message: format!(
                        "`tnb-lint: allow({})` without a `-- <reason>` justification",
                        rules.join(", ")
                    ),
                });
                continue;
            }
            // A standalone annotation (no code on its line) covers the
            // next line that carries code; a trailing one covers its own.
            let target = if lines[i].code.trim().is_empty() {
                (i + 1..n)
                    .find(|&j| !lines[j].code.trim().is_empty())
                    .unwrap_or(i)
            } else {
                i
            };
            allows.push(Allow {
                rules,
                reason: reason.to_string(),
                target_line: target,
                at_line: i,
            });
        } else if directive == "no_alloc" || directive.starts_with("no_alloc --") {
            let end = item_region_end(lines, i);
            for l in lines.iter_mut().take(end + 1).skip(i) {
                l.no_alloc = true;
            }
        } else if directive == "no_alloc_root" || directive.starts_with("no_alloc_root --") {
            // A root is a no_alloc region (the line rules police its own
            // body) plus an interprocedural seed: everything reachable
            // from it through the call graph must be allocation-free.
            let end = item_region_end(lines, i);
            for l in lines.iter_mut().take(end + 1).skip(i) {
                l.no_alloc = true;
            }
            roots.push(i);
        } else {
            bad.push(BadDirective {
                line: i,
                message: format!(
                    "unknown `tnb-lint:` directive `{}` (expected `allow(...) -- reason`, \
                     `no_alloc`, or `no_alloc_root`)",
                    directive.split_whitespace().next().unwrap_or("")
                ),
            });
        }
    }
    (allows, bad, roots)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = SourceFile::parse("let x = \"Instant::now\"; // Instant::now\nlet y = 1;");
        assert!(!f.lines[0].code.contains("Instant"));
        assert!(f.lines[0].comment.contains("Instant::now"));
        assert_eq!(f.lines[1].code, "let y = 1;");
    }

    #[test]
    fn block_comments_span_lines() {
        let f = SourceFile::parse("a /* x\nHashMap\n*/ b");
        assert!(!f.lines[1].code.contains("HashMap"));
        assert!(f.lines[1].comment.contains("HashMap"));
        assert!(f.lines[2].code.contains('b'));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}";
        let f = SourceFile::parse(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test && f.lines[2].in_test && f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn no_alloc_region_covers_function_body() {
        let src =
            "// tnb-lint: no_alloc\nfn hot(x: &mut Vec<u8>) {\n    x.push(1);\n}\nfn cold() {}";
        let f = SourceFile::parse(src);
        assert!(f.lines[0].no_alloc && f.lines[1].no_alloc && f.lines[2].no_alloc);
        assert!(f.lines[3].no_alloc);
        assert!(!f.lines[4].no_alloc);
    }

    #[test]
    fn allow_requires_reason() {
        let f = SourceFile::parse("// tnb-lint: allow(TNB-PANIC02)\nassert!(true);");
        assert_eq!(f.allows.len(), 0);
        assert_eq!(f.bad_directives.len(), 1);

        let ok = SourceFile::parse("// tnb-lint: allow(TNB-PANIC02) -- precondition\nassert!(x);");
        assert_eq!(ok.allows.len(), 1);
        assert_eq!(ok.allows[0].target_line, 1);
        assert!(ok.is_allowed(1, "TNB-PANIC02", "panic_free"));
        assert!(!ok.is_allowed(1, "TNB-DET01", "determinism"));
    }

    #[test]
    fn trailing_allow_targets_own_line() {
        let f = SourceFile::parse("assert!(x); // tnb-lint: allow(panic_free) -- precondition");
        assert_eq!(f.allows[0].target_line, 0);
        assert!(f.is_allowed(0, "TNB-PANIC02", "panic_free"));
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let f = SourceFile::parse("let a = '\"'; let b: Vec<u8> = vec![];");
        assert!(f.lines[0].code.contains("vec!"));
    }

    #[test]
    fn panic_inside_raw_strings_is_blanked() {
        // A panic! spelled inside r"…", r#"…"#, and br#"…"# literals is
        // string content, not code — the rules must never see it.
        for src in [
            "let s = r\"panic!(oops)\";",
            "let s = r#\"panic!(\"oops\")\"#;",
            "let s = br#\"panic!(\"oops\")\"#;",
            "let s = b\"panic!\";",
        ] {
            let f = SourceFile::parse(src);
            assert!(
                !f.lines[0].code.contains("panic!"),
                "{src:?} leaked into code: {:?}",
                f.lines[0].code
            );
        }
        // A hashed raw string does not end at a bare quote.
        let f = SourceFile::parse("let s = r#\"one \" two\"#; panic!(x);");
        assert!(f.lines[0].code.contains("panic!"), "{:?}", f.lines[0].code);
        assert!(!f.lines[0].code.contains("two"));
    }

    #[test]
    fn raw_string_prefix_requires_token_boundary() {
        // `attr"x"` is an identifier followed by a plain string, not a
        // raw string: the identifier survives, the contents are blanked.
        let f = SourceFile::parse("let y = attr\"panic!\";");
        assert!(f.lines[0].code.contains("attr"));
        assert!(!f.lines[0].code.contains("panic!"));
    }

    #[test]
    fn nested_block_comments_track_depth() {
        // Rust block comments nest: the inner /* */ does not terminate
        // the outer one, so the panic! on line 1 is still comment…
        let f = SourceFile::parse("/* outer /* inner */ panic!(a) */ panic!(b);");
        let code = &f.lines[0].code;
        assert!(!code.contains("panic!(a)"), "{code:?}");
        assert!(code.contains("panic!(b)"), "{code:?}");
        // …and after an imbalanced `*/ */` the second terminator is plain
        // code, so a panic! following it IS visible to the rules.
        let g = SourceFile::parse("/* c */ */ panic!(c);");
        assert!(
            g.lines[0].code.contains("panic!(c)"),
            "{:?}",
            g.lines[0].code
        );
    }

    #[test]
    fn no_alloc_root_marks_region_and_records_root() {
        let src = "// tnb-lint: no_alloc_root\nfn hot() {\n    work();\n}\nfn cold() {}";
        let f = SourceFile::parse(src);
        assert_eq!(f.roots, vec![0]);
        assert!(f.lines[1].no_alloc && f.lines[2].no_alloc);
        assert!(!f.lines[4].no_alloc);
        assert!(f.bad_directives.is_empty());
    }
}
