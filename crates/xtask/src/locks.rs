//! Pass 2c: lock discipline (TNB-LOCK01/02).
//!
//! Lock *identities* are lexical: the last receiver component before a
//! `.lock()` / `.read()` / `.write()` acquisition (`self.state.lock()`
//! → `state`). Analysis is **per file** — identities are field names,
//! and scoping them to the file keeps `server.rs`'s `state` distinct
//! from `client.rs`'s. A fn whose signature returns a guard type and
//! that directly acquires a lock is a *guard wrapper*: calls to it are
//! acquisitions of its underlying identity (the repo's
//! poison-recovering `lock_*` helpers).
//!
//! * **TNB-LOCK01** — the per-file lock-order graph (identity A held
//!   while B is acquired, directly or through a same-file call) has a
//!   cycle, including self-loops (re-acquiring a non-reentrant Mutex).
//!   Both acquisition sites appear in the diagnostic.
//! * **TNB-LOCK02** — a blocking call (socket/pipe IO, `recv`, `join`,
//!   `sleep`) while a guard is live. Condvar `wait`/`wait_timeout` are
//!   deliberately not blocking tokens: they release the guard.
//!
//! Guard liveness is a lexical simulation: a `let`-bound guard lives
//! until `drop(var)`, its enclosing brace scope closes, or the fn ends;
//! an unbound guard (temporary) lives to the end of its line.

use crate::diagnostics::Diagnostic;
use crate::model::{EffectKind, FileModel, FnItem};
use crate::rules::{token_cols, FileKind};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// A (0-based) source position.
type Site = (usize, usize);

/// One lock-order observation: `held` was live when `acquired` was taken.
struct Ordered {
    held: String,
    acquired: String,
    held_site: Site,
    acq_site: Site,
}

pub fn check(models: &[FileModel], srcs: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    for (fi, m) in models.iter().enumerate() {
        if m.scope.kind != FileKind::LibSrc {
            continue;
        }
        check_file(m, &srcs[fi], diags);
    }
}

fn check_file(m: &FileModel, src: &SourceFile, diags: &mut Vec<Diagnostic>) {
    // Same-file fn name index and guard-wrapper identities.
    let mut fn_idx: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in m.fns.iter().enumerate() {
        if !f.in_test {
            fn_idx.entry(f.name.as_str()).or_default().push(i);
        }
    }
    let wrappers: BTreeMap<&str, String> = m
        .fns
        .iter()
        .filter(|f| !f.in_test && f.returns_guard && !f.acquires.is_empty())
        .map(|f| (f.name.as_str(), f.acquires[0].lock.clone()))
        .collect();
    let acq_sets = acquire_sets(m, &fn_idx);

    let mut ordered: Vec<Ordered> = Vec::new();
    for (i, f) in m.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        simulate(
            m,
            src,
            f,
            i,
            &wrappers,
            &fn_idx,
            &acq_sets,
            &mut ordered,
            diags,
        );
    }
    report_cycles(m, src, &ordered, diags);
}

/// Fixpoint of "identities this fn may acquire", including through
/// same-file calls (wrappers fall out naturally: their direct
/// acquisition is in their own set).
fn acquire_sets(m: &FileModel, fn_idx: &BTreeMap<&str, Vec<usize>>) -> Vec<BTreeSet<String>> {
    let mut sets: Vec<BTreeSet<String>> = m
        .fns
        .iter()
        .map(|f| f.acquires.iter().map(|a| a.lock.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for (i, f) in m.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            for call in &f.calls {
                let Some(callees) = fn_idx.get(call.callee.as_str()) else {
                    continue;
                };
                for &c in callees {
                    if c == i {
                        continue;
                    }
                    let add: Vec<String> = sets[c].difference(&sets[i]).cloned().collect();
                    if !add.is_empty() {
                        sets[i].extend(add);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return sets;
        }
    }
}

/// A live guard during the lexical simulation.
struct Guard {
    id: String,
    var: Option<String>,
    /// Brace depth (relative to fn start) at binding; the guard dies
    /// when the depth drops below it.
    depth: i64,
    site: Site,
}

enum Event {
    /// Direct or wrapper acquisition producing a live guard.
    Acquire { id: String, col: usize },
    /// Same-file call that (transitively) acquires locks but returns no
    /// guard: orders `held -> each acquired`, no liveness.
    Call { fn_ix: usize, col: usize },
    /// Blocking token (from the model's effect seeds).
    Block { token: &'static str, col: usize },
    /// `drop(var)`.
    Drop { var: String, col: usize },
}

impl Event {
    fn col(&self) -> usize {
        match self {
            Event::Acquire { col, .. }
            | Event::Call { col, .. }
            | Event::Block { col, .. }
            | Event::Drop { col, .. } => *col,
        }
    }
}

#[allow(clippy::too_many_arguments)] // internal plumbing of one file's context
fn simulate(
    m: &FileModel,
    src: &SourceFile,
    f: &FnItem,
    f_ix: usize,
    wrappers: &BTreeMap<&str, String>,
    fn_idx: &BTreeMap<&str, Vec<usize>>,
    acq_sets: &[BTreeSet<String>],
    ordered: &mut Vec<Ordered>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i64 = 0;
    let mut self_loops: BTreeSet<Site> = BTreeSet::new();
    for line in f.sig_line..=f.end_line.min(src.lines.len().saturating_sub(1)) {
        let code = &src.lines[line].code;
        let mut events: Vec<Event> = Vec::new();
        for a in f.acquires.iter().filter(|a| a.line == line) {
            events.push(Event::Acquire {
                id: a.lock.clone(),
                col: a.col,
            });
        }
        for call in f.calls.iter().filter(|c| c.line == line) {
            if call.callee == f.name {
                continue; // recursion, or a wrapper's own `.lock()` resolving to itself
            }
            if let Some(identity) = wrappers.get(call.callee.as_str()) {
                events.push(Event::Acquire {
                    id: identity.clone(),
                    col: call.col,
                });
            } else if let Some(callees) = fn_idx.get(call.callee.as_str()) {
                for &c in callees {
                    if c != f_ix && !acq_sets[c].is_empty() {
                        events.push(Event::Call {
                            fn_ix: c,
                            col: call.col,
                        });
                    }
                }
            }
        }
        for s in f.seeds.iter() {
            if s.line == line && s.kind == EffectKind::Blocking {
                events.push(Event::Block {
                    token: s.token,
                    col: s.col,
                });
            }
        }
        for dcol in token_cols(code, "drop") {
            if let Some(var) = paren_ident(code, dcol + 4) {
                events.push(Event::Drop { var, col: dcol });
            }
        }
        events.sort_by_key(Event::col);

        for ev in events {
            match ev {
                Event::Acquire { id, col } => {
                    for g in &guards {
                        record_order(m, src, g, &id, (line, col), &mut self_loops, ordered, diags);
                    }
                    guards.push(Guard {
                        id,
                        var: let_binding(code, col),
                        depth,
                        site: (line, col),
                    });
                }
                Event::Call { fn_ix, col } => {
                    for g in &guards {
                        for b in &acq_sets[fn_ix] {
                            record_order(
                                m,
                                src,
                                g,
                                b,
                                (line, col),
                                &mut self_loops,
                                ordered,
                                diags,
                            );
                        }
                    }
                }
                Event::Block { token, col } => {
                    if let Some(g) = guards.first() {
                        if !src.is_allowed(line, "TNB-LOCK02", "locking") {
                            diags.push(Diagnostic {
                                file: m.rel_path.clone(),
                                line: line + 1,
                                col: col + 1,
                                rule: "TNB-LOCK02",
                                message: format!(
                                    "blocking call `{token}` while lock guard `{}` (acquired \
                                     at line {}) is live; drop or scope the guard before \
                                     blocking",
                                    g.id,
                                    g.site.0 + 1,
                                ),
                            });
                        }
                    }
                }
                Event::Drop { var, .. } => {
                    guards.retain(|g| g.var.as_deref() != Some(var.as_str()));
                }
            }
        }

        let net: i64 = code
            .chars()
            .map(|c| match c {
                '{' => 1,
                '}' => -1,
                _ => 0,
            })
            .sum();
        depth += net;
        guards.retain(|g| g.var.is_some() && g.depth <= depth);
    }
}

/// Records one held→acquired observation; self-loops are reported
/// immediately (re-acquiring a held lock deadlocks a Mutex).
#[allow(clippy::too_many_arguments)] // internal plumbing of one file's context
fn record_order(
    m: &FileModel,
    src: &SourceFile,
    held: &Guard,
    acquired: &str,
    acq_site: Site,
    self_loops: &mut BTreeSet<Site>,
    ordered: &mut Vec<Ordered>,
    diags: &mut Vec<Diagnostic>,
) {
    if held.id == acquired {
        if self_loops.insert(acq_site) && !src.is_allowed(acq_site.0, "TNB-LOCK01", "locking") {
            diags.push(Diagnostic {
                file: m.rel_path.clone(),
                line: acq_site.0 + 1,
                col: acq_site.1 + 1,
                rule: "TNB-LOCK01",
                message: format!(
                    "lock `{}` acquired while already held (acquired at line {}); a \
                     non-reentrant Mutex self-deadlocks here",
                    held.id,
                    held.site.0 + 1,
                ),
            });
        }
        return;
    }
    ordered.push(Ordered {
        held: held.id.clone(),
        acquired: acquired.to_string(),
        held_site: held.site,
        acq_site,
    });
}

/// Reports lock-order cycles in the per-file graph of observations.
fn report_cycles(
    m: &FileModel,
    src: &SourceFile,
    ordered: &[Ordered],
    diags: &mut Vec<Diagnostic>,
) {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for o in ordered {
        adj.entry(o.held.as_str())
            .or_default()
            .insert(o.acquired.as_str());
    }
    let reach = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::from([from]);
        let mut queue = vec![from];
        while let Some(n) = queue.pop() {
            if n == to {
                return true;
            }
            for &next in adj.get(n).into_iter().flatten() {
                if seen.insert(next) {
                    queue.push(next);
                }
            }
        }
        false
    };
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for o in ordered {
        if !reach(&o.acquired, &o.held) {
            continue;
        }
        let key = if o.held < o.acquired {
            (o.held.clone(), o.acquired.clone())
        } else {
            (o.acquired.clone(), o.held.clone())
        };
        if !reported.insert(key) {
            continue;
        }
        // The edge that closes the cycle back into `held`.
        let closing = ordered.iter().find(|c| {
            c.acquired == o.held && (c.held == o.acquired || reach(&o.acquired, &c.held))
        });
        let closing_txt = closing
            .map(|c| {
                format!(
                    "; the reverse order is at line {} (`{}` held at line {})",
                    c.acq_site.0 + 1,
                    c.held,
                    c.held_site.0 + 1,
                )
            })
            .unwrap_or_default();
        if src.is_allowed(o.acq_site.0, "TNB-LOCK01", "locking") {
            continue;
        }
        diags.push(Diagnostic {
            file: m.rel_path.clone(),
            line: o.acq_site.0 + 1,
            col: o.acq_site.1 + 1,
            rule: "TNB-LOCK01",
            message: format!(
                "lock-order cycle: `{}` (held since line {}) then `{}` here{}; pick one \
                 order or merge the locks",
                o.held,
                o.held_site.0 + 1,
                o.acquired,
                closing_txt,
            ),
        });
    }
}

/// The single identifier inside `(...)` starting at `open` (expects
/// `code[open] == '('`), e.g. the `st` of `drop(st)`.
fn paren_ident(code: &str, open: usize) -> Option<String> {
    let rest = code.get(open..)?.strip_prefix('(')?;
    let close = rest.find(')')?;
    let inner = rest[..close].trim();
    let ok = !inner.is_empty() && inner.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    ok.then(|| inner.to_string())
}

/// The variable a `let` on this line binds, when the acquisition at
/// `col` sits on the right-hand side of `let [mut] var = …`.
fn let_binding(code: &str, col: usize) -> Option<String> {
    let lcol = token_cols(code, "let").into_iter().rfind(|&c| c < col)?;
    let rest = code[lcol + 3..].trim_start();
    let rest = rest
        .strip_prefix("mut ")
        .map(str::trim_start)
        .unwrap_or(rest);
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    let after = rest[ident.len()..].trim_start();
    (!ident.is_empty() && (after.starts_with('=') || after.starts_with(':'))).then_some(ident)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model;
    use crate::rules::{FileKind, FileScope};

    fn lint(content: &str) -> Vec<Diagnostic> {
        let src = SourceFile::parse(content);
        let scope = FileScope {
            crate_name: "tnb-gateway".into(),
            kind: FileKind::LibSrc,
        };
        let m = model::build("g.rs", &scope, &src);
        let mut diags = Vec::new();
        check(&[m], &[src], &mut diags);
        diags
    }

    #[test]
    fn opposite_acquisition_orders_cycle() {
        let d = lint(
            "fn a(&self) {\n    let s = self.state.lock();\n    let t = self.table.lock();\n}\n\
             fn b(&self) {\n    let t = self.table.lock();\n    let s = self.state.lock();\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "TNB-LOCK01");
        assert!(d[0].message.contains("cycle"), "{}", d[0].message);
    }

    #[test]
    fn consistent_order_is_clean() {
        let d = lint(
            "fn a(&self) {\n    let s = self.state.lock();\n    let t = self.table.lock();\n}\n\
             fn b(&self) {\n    let s = self.state.lock();\n    let t = self.table.lock();\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn reacquire_through_wrapper_call_is_a_self_loop() {
        let d = lint(
            "fn lock_state(&self) -> MutexGuard<'_, State> {\n    self.state.lock()\n}\n\
             fn f(&self) {\n    let st = self.lock_state();\n    self.helper();\n}\n\
             fn helper(&self) {\n    let st = self.lock_state();\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("already held"), "{}", d[0].message);
    }

    #[test]
    fn blocking_while_guard_live_flagged_and_scoping_clears_it() {
        let bad = lint(
            "fn f(&self) {\n    let st = self.state.lock();\n    self.sock.write_all(&buf);\n}\n",
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].rule, "TNB-LOCK02");

        let dropped = lint(
            "fn f(&self) {\n    let st = self.state.lock();\n    drop(st);\n    self.sock.write_all(&buf);\n}\n",
        );
        assert!(dropped.is_empty(), "{dropped:?}");

        let scoped = lint(
            "fn f(&self) {\n    {\n        let st = self.state.lock();\n    }\n    self.sock.write_all(&buf);\n}\n",
        );
        assert!(scoped.is_empty(), "{scoped:?}");
    }

    #[test]
    fn condvar_wait_is_not_blocking() {
        let d = lint(
            "fn f(&self) {\n    let mut st = self.state.lock();\n    st = self.cv.wait_timeout(st, dur).0;\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn rwlock_read_write_are_acquisitions_but_io_read_is_not() {
        let d = lint(
            "fn f(&self) {\n    let g = self.map.read();\n    self.sock.read_exact(&mut buf);\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "TNB-LOCK02");
    }
}
