//! Pass 1 of the interprocedural analysis: a lightweight item model of
//! one preprocessed source file.
//!
//! The model is deliberately lexical — built on [`SourceFile`]'s
//! stripped lines, not a real parser. It records every `fn` item (span,
//! visibility, `no_alloc_root` marking), the call expressions inside it
//! (free calls, `Path::to::fn(` calls, `.method(` calls with their
//! receiver chain), the direct *effect seeds* its body carries
//! (allocation / panic / clock / nondet-order / blocking tokens from
//! the curated std tables in the rule modules), and its lock-guard
//! acquisitions. Pass 2 (`crate::callgraph`, `crate::effects`,
//! `crate::locks`) resolves calls by name and propagates effects to a
//! fixed point.

use crate::rules::{determinism, no_alloc, panic_free, token_cols, FileScope};
use crate::source::{item_region_end, SourceFile};

/// Method/path calls that block the calling thread: socket and pipe IO,
/// channel receives, thread joins, sleeps. `.join()` matches only the
/// zero-argument form, so `PathBuf::join(p)` / `slice::join(sep)` never
/// do; `.recv(` also covers `recv_timeout` via its own entry.
pub const BLOCKING_TOKENS: [&str; 11] = [
    ".write_all(",
    ".flush()",
    ".read_exact(",
    ".read_to_end(",
    ".read_to_string(",
    ".read_line(",
    ".recv()",
    ".recv_timeout(",
    ".accept()",
    ".join()",
    "thread::sleep",
];

/// Direct effect kinds a line can seed (the lattice is their power set,
/// represented as a bit set in `crate::effects`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectKind {
    /// Fresh heap allocation (constructor or collecting adapter).
    Alloc,
    /// Unconditional panic / unwrap / expect.
    Panic,
    /// Wall-clock read.
    Clock,
    /// Hash-randomized iteration order.
    NondetOrder,
    /// Blocks the calling thread (IO, join, recv, sleep).
    Blocking,
}

/// One direct effect seed: `token` found at `line:col` (0-based).
#[derive(Debug, Clone)]
pub struct Seed {
    pub kind: EffectKind,
    pub token: &'static str,
    pub line: usize,
    pub col: usize,
}

/// One call expression.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Last path segment / method name — the name resolution key.
    pub callee: String,
    /// Leading path segments for qualified calls (`crate::a::f(` →
    /// `["crate", "a"]`, `tnb_dsp::fft::plan(` → `["tnb_dsp", "fft"]`,
    /// `FftPlan::new(` → `["FftPlan"]`); empty for bare and method calls.
    pub path: Vec<String>,
    /// `.method(` call; `receiver` then holds the identifier chain
    /// before the dot (`self.state.lock()` → `["self", "state"]`),
    /// empty when the receiver is an expression (`f(x).g()`).
    pub is_method: bool,
    pub receiver: Vec<String>,
    pub line: usize,
    pub col: usize,
}

/// One lock-guard acquisition: `.lock()` / `.read()` / `.write()` with
/// empty argument lists (`.read(buf)` is IO, not a lock).
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Lock identity: the last receiver component (`self.state.lock()`
    /// → `state`), or `self` for a bare `self.lock()`.
    pub lock: String,
    pub line: usize,
    pub col: usize,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Line of the `fn` keyword (0-based) and the item's inclusive end.
    pub sig_line: usize,
    pub end_line: usize,
    /// `pub fn` (not `pub(crate)`/`pub(super)`) — crate-external API.
    pub is_pub: bool,
    /// Carries a `tnb-lint: no_alloc_root` directive.
    pub is_root: bool,
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Signature returns a `MutexGuard` / `RwLock*Guard` — calls to this
    /// fn are themselves lock acquisitions (guard-wrapper pattern).
    pub returns_guard: bool,
    pub calls: Vec<CallSite>,
    pub seeds: Vec<Seed>,
    pub acquires: Vec<LockSite>,
}

/// The pass-1 model of one file.
#[derive(Debug)]
pub struct FileModel {
    pub rel_path: String,
    pub scope: FileScope,
    pub fns: Vec<FnItem>,
}

/// Builds the item model for one preprocessed file.
pub fn build(rel_path: &str, scope: &FileScope, src: &SourceFile) -> FileModel {
    let mut fns = find_fns(src);
    let owner = line_owners(&fns, src.lines.len());
    for (i, line) in src.lines.iter().enumerate() {
        let Some(f) = owner[i] else { continue };
        if line.in_test {
            continue;
        }
        scan_calls(&line.code, i, &mut fns[f].calls);
        scan_seeds(src, i, &mut fns[f].seeds);
        scan_locks(&line.code, i, &mut fns[f].acquires);
    }
    FileModel {
        rel_path: rel_path.to_string(),
        scope: scope.clone(),
        fns,
    }
}

/// Locates every `fn` item: signature line, region end, visibility,
/// root marking, guard-returning signature.
fn find_fns(src: &SourceFile) -> Vec<FnItem> {
    let mut fns = Vec::new();
    for (i, line) in src.lines.iter().enumerate() {
        for col in token_cols(&line.code, "fn") {
            let after = &line.code[col + 2..];
            let Some(name) = leading_ident(after) else {
                continue; // `fn(i32) -> i32` type position
            };
            let end = item_region_end(&src.lines, i);
            let before = &line.code[..col];
            let is_pub = token_cols(before, "pub")
                .iter()
                .any(|&p| !before[p + 3..].trim_start().starts_with('('));
            // The directive sits above the fn (possibly above stacked
            // attributes): the root whose region starts here owns it.
            let is_root = src.roots.iter().any(|&r| {
                r <= i && item_region_end(&src.lines, r) == end && covers_only(src, r, i)
            });
            let returns_guard = (i..=end.min(i + 6)).any(|j| {
                let c = &src.lines[j].code;
                let sig_part = match c.find('{') {
                    Some(b) if j > i || b > col => &c[..b],
                    _ => c.as_str(),
                };
                ["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"]
                    .iter()
                    .any(|g| sig_part.contains(g))
            });
            fns.push(FnItem {
                name,
                sig_line: i,
                end_line: end,
                is_pub,
                is_root,
                in_test: line.in_test,
                returns_guard,
                calls: Vec::new(),
                seeds: Vec::new(),
                acquires: Vec::new(),
            });
        }
    }
    fns
}

/// True when no other code line between directive `r` and fn line `i`
/// starts a different item (the directive's region-end equality check
/// already rules most of these out; this guards same-end nestings).
fn covers_only(src: &SourceFile, r: usize, i: usize) -> bool {
    (r..i).all(|j| {
        let code = src.lines[j].code.trim();
        code.is_empty() || code.starts_with("#[") || token_cols(code, "fn").is_empty()
    })
}

/// The identifier at the start of `s` (after whitespace), if any.
fn leading_ident(s: &str) -> Option<String> {
    let t = s.trim_start();
    let end = t
        .char_indices()
        .find(|(_, c)| !c.is_ascii_alphanumeric() && *c != '_')
        .map(|(i, _)| i)
        .unwrap_or(t.len());
    let ident = &t[..end];
    let starts_ok = ident
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    starts_ok.then(|| ident.to_string())
}

/// Innermost owning fn per line (`None` for module-level lines).
fn line_owners(fns: &[FnItem], n_lines: usize) -> Vec<Option<usize>> {
    let mut owner: Vec<Option<usize>> = vec![None; n_lines];
    // Later (more deeply nested or simply later) fns overwrite earlier
    // ones, leaving the innermost fn as the owner of each line.
    for (fi, f) in fns.iter().enumerate() {
        for slot in owner
            .iter_mut()
            .take(f.end_line.min(n_lines.saturating_sub(1)) + 1)
            .skip(f.sig_line)
        {
            *slot = Some(fi);
        }
    }
    owner
}

/// Statement keywords that look like calls when followed by `(`.
const KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "fn", "let", "else", "in", "as", "move",
    "break", "impl",
];

/// Extracts call expressions from one stripped code line.
fn scan_calls(code: &str, line_no: usize, out: &mut Vec<CallSite>) {
    let b: Vec<char> = code.chars().collect();
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut i = 0;
    while i < b.len() {
        if !(b[i].is_ascii_alphabetic() || b[i] == '_') || (i > 0 && is_ident(b[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        let mut e = i;
        while e < b.len() && is_ident(b[e]) {
            e += 1;
        }
        let name: String = b[start..e].iter().collect();
        i = e;
        // Optional turbofish between the name and the argument list.
        let mut j = e;
        if b.get(j) == Some(&':') && b.get(j + 1) == Some(&':') && b.get(j + 2) == Some(&'<') {
            let mut depth = 0i32;
            let mut k = j + 2;
            while k < b.len() {
                match b[k] {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            if depth != 0 || k >= b.len() {
                continue;
            }
            j = k + 1;
        }
        if b.get(j) != Some(&'(') {
            continue;
        }
        if b.get(e) == Some(&'!') {
            continue; // macro invocation — covered by the seed tables
        }
        if KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        // Classify by what precedes the name.
        if start >= 2 && b[start - 1] == ':' && b[start - 2] == ':' {
            // Qualified path call: walk the `seg::seg::` chain back.
            let mut path = Vec::new();
            let mut p = start - 2;
            loop {
                let seg_end = p;
                let mut s = seg_end;
                while s > 0 && is_ident(b[s - 1]) {
                    s -= 1;
                }
                if s == seg_end {
                    break; // `<T as Trait>::f(` and friends: give up on the chain
                }
                path.insert(0, b[s..seg_end].iter().collect::<String>());
                if s >= 2 && b[s - 1] == ':' && b[s - 2] == ':' {
                    p = s - 2;
                } else {
                    break;
                }
            }
            // A fn-definition line scans its own name: `fn f(` — the
            // path branch cannot be one, no exclusion needed.
            out.push(CallSite {
                callee: name,
                path,
                is_method: false,
                receiver: Vec::new(),
                line: line_no,
                col: start,
            });
        } else if start >= 1 && b[start - 1] == '.' {
            // Method call: collect the dotted identifier receiver chain.
            let mut receiver = Vec::new();
            let mut p = start - 1; // at the dot
            while p > 0 {
                let seg_end = p;
                let mut s = seg_end;
                while s > 0 && is_ident(b[s - 1]) {
                    s -= 1;
                }
                if s == seg_end {
                    break; // expression receiver: `f(x).g(` / `xs[i].g(`
                }
                receiver.insert(0, b[s..seg_end].iter().collect::<String>());
                if s >= 1 && b[s - 1] == '.' {
                    p = s - 1;
                } else {
                    break;
                }
            }
            out.push(CallSite {
                callee: name,
                path: Vec::new(),
                is_method: true,
                receiver,
                line: line_no,
                col: start,
            });
        } else {
            // Bare call — skip the fn's own definition (`fn name(`).
            let before: String = b[..start].iter().collect();
            if token_cols(&before, "fn")
                .iter()
                .any(|&c| before[c + 2..].trim().is_empty())
            {
                continue;
            }
            out.push(CallSite {
                callee: name,
                path: Vec::new(),
                is_method: false,
                receiver: Vec::new(),
                line: line_no,
                col: start,
            });
        }
    }
}

/// Collects the direct effect seeds of one line. Allowed lines do not
/// seed: a justified escape hatch covers the transitive story too.
fn scan_seeds(src: &SourceFile, i: usize, out: &mut Vec<Seed>) {
    let code = &src.lines[i].code;
    let mut push = |kind, token: &'static str, col, direct: &str, group: &str, flow: &str| {
        if src.is_allowed(i, direct, group) || src.is_allowed(i, flow, "flow") {
            return;
        }
        out.push(Seed {
            kind,
            token,
            line: i,
            col,
        });
    };
    for tok in no_alloc::ALLOC_TOKENS {
        for col in token_cols(code, tok) {
            push(
                EffectKind::Alloc,
                tok,
                col,
                "TNB-ALLOC01",
                "no_alloc",
                "TNB-FLOW01",
            );
        }
    }
    for tok in panic_free::PANIC_MACROS {
        for col in token_cols(code, tok) {
            push(
                EffectKind::Panic,
                tok,
                col,
                "TNB-PANIC01",
                "panic_free",
                "TNB-FLOW02",
            );
        }
    }
    for tok in panic_free::UNWRAP_TOKENS {
        for col in token_cols(code, tok) {
            push(
                EffectKind::Panic,
                tok,
                col,
                "TNB-PANIC03",
                "panic_free",
                "TNB-FLOW02",
            );
        }
    }
    for tok in determinism::CLOCK_TOKENS {
        for col in token_cols(code, tok) {
            push(
                EffectKind::Clock,
                tok,
                col,
                "TNB-DET01",
                "determinism",
                "TNB-FLOW03",
            );
        }
    }
    for tok in determinism::HASH_TOKENS {
        for col in token_cols(code, tok) {
            push(
                EffectKind::NondetOrder,
                tok,
                col,
                "TNB-DET02",
                "determinism",
                "TNB-FLOW03",
            );
        }
    }
    for tok in BLOCKING_TOKENS {
        for col in token_cols(code, tok) {
            push(
                EffectKind::Blocking,
                tok,
                col,
                "TNB-LOCK02",
                "locking",
                "TNB-LOCK02",
            );
        }
    }
}

/// Collects lock-guard acquisitions: `.lock()` always; `.read()` /
/// `.write()` only in their zero-argument RwLock form.
fn scan_locks(code: &str, line_no: usize, out: &mut Vec<LockSite>) {
    for tok in [".lock()", ".read()", ".write()"] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(tok) {
            let at = from + pos;
            from = at + tok.len();
            out.push(LockSite {
                lock: receiver_tail(code, at),
                line: line_no,
                col: at,
            });
        }
    }
    out.sort_by_key(|l| l.col);
}

/// Last identifier of the receiver chain ending at byte `dot_at` (the
/// `.` of the method token), or `self` when the chain is bare `self`,
/// or `?` for expression receivers.
fn receiver_tail(code: &str, dot_at: usize) -> String {
    let b: Vec<char> = code.chars().collect();
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut s = dot_at;
    while s > 0 && is_ident(b[s - 1]) {
        s -= 1;
    }
    if s == dot_at {
        return "?".to_string();
    }
    b[s..dot_at].iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{FileKind, FileScope};

    fn model_of(src: &str) -> FileModel {
        let parsed = SourceFile::parse(src);
        let scope = FileScope {
            crate_name: "tnb-core".into(),
            kind: FileKind::LibSrc,
        };
        build("m.rs", &scope, &parsed)
    }

    #[test]
    fn fns_calls_and_seeds_are_extracted() {
        let m = model_of(
            "pub fn outer(x: u32) -> u32 {\n    helper(x);\n    self.plans.get(x).forward();\n    tnb_dsp::fft::plan(x)\n}\nfn helper(x: u32) -> u32 {\n    let v = Vec::new();\n    x\n}\n",
        );
        assert_eq!(m.fns.len(), 2);
        let outer = &m.fns[0];
        assert!(outer.is_pub && !outer.is_root);
        let names: Vec<&str> = outer.calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(names, ["helper", "get", "forward", "plan"]);
        assert!(outer.calls[0].path.is_empty() && !outer.calls[0].is_method);
        assert!(outer.calls[1].is_method);
        assert_eq!(outer.calls[1].receiver, ["self", "plans"]);
        assert_eq!(outer.calls[3].path, ["tnb_dsp", "fft"]);
        let helper = &m.fns[1];
        assert_eq!(helper.seeds.len(), 1);
        assert_eq!(helper.seeds[0].kind, EffectKind::Alloc);
        assert_eq!(helper.seeds[0].line, 6);
    }

    #[test]
    fn root_directive_marks_the_fn() {
        let m = model_of("// tnb-lint: no_alloc_root\npub fn hot() {\n    work();\n}\n");
        assert!(m.fns[0].is_root);
    }

    #[test]
    fn allowed_lines_do_not_seed() {
        let m = model_of(
            "fn f() {\n    // tnb-lint: allow(TNB-FLOW02) -- fixture\n    opt.unwrap();\n    x.unwrap();\n}\n",
        );
        assert_eq!(m.fns[0].seeds.len(), 1);
        assert_eq!(m.fns[0].seeds[0].line, 3);
    }

    #[test]
    fn lock_acquisitions_record_receiver_identity() {
        let m = model_of(
            "fn f(&self) {\n    let a = self.state.lock();\n    let b = self.inner.read();\n    sock.read(&mut buf);\n}\n",
        );
        let locks: Vec<&str> = m.fns[0].acquires.iter().map(|l| l.lock.as_str()).collect();
        assert_eq!(
            locks,
            ["state", "inner"],
            "read-with-args is IO, not a lock"
        );
    }

    #[test]
    fn guard_wrapper_signature_is_detected() {
        let m = model_of(
            "fn lock_state(&self) -> MutexGuard<'_, State> {\n    self.state.lock().unwrap_or_else(|e| e.into_inner())\n}\n",
        );
        assert!(m.fns[0].returns_guard);
        assert_eq!(m.fns[0].acquires[0].lock, "state");
    }

    #[test]
    fn test_code_contributes_nothing() {
        let m = model_of(
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        v.unwrap();\n    }\n}\n",
        );
        let t = m.fns.iter().find(|f| f.name == "t").expect("t modeled");
        assert!(t.in_test && t.seeds.is_empty());
    }
}
