//! Pipeline observability for the TnB receiver: counters, gauges and
//! latency histograms, with no external dependencies (consistent with the
//! offline `compat/` approach of the rest of the workspace).
//!
//! Two kinds of data flow through this crate, split on determinism:
//!
//! - [`StageCounters`] holds *deterministic* per-stage event counts
//!   (windows scanned, sync attempts, signal vectors computed, peaks
//!   considered, CRC checks, …). These are tied to per-slot/per-packet
//!   events, so the serial receiver and the parallel receiver produce the
//!   *same* totals on the same input — they ride inside `DecodeReport`
//!   and participate in its `Eq`.
//! - [`PipelineMetrics`] holds *nondeterministic* measurements — wall-time
//!   histograms per stage, matching-cost and BEC-candidate distributions,
//!   gauges — recorded through interior mutability (`Cell`) so the hot
//!   path takes `&self`. Snapshots ([`MetricsSnapshot`]) are plain data
//!   and never compared for equality across runs.
//!
//! A disabled `PipelineMetrics` never reads the clock and records
//! nothing, so the instrumented pipeline is zero-cost when observability
//! is off; recording itself never allocates (fixed-size bucket arrays),
//! keeping the receiver's zero-alloc steady state intact.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The pipeline stages of the TnB receiver (paper Fig. 3, with detection
/// split from the fractional synchronization it ends in, plus the SIC
/// rescue pass that reconstructs and subtracts decoded packets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Preamble scan and whole-symbol validation (detection steps 1–3).
    Detect,
    /// Fractional timing/CFO search (detection step 4).
    Sync,
    /// Aligned, CFO-corrected signal-vector computation.
    SigCalc,
    /// Thrive peak assignment at checking points.
    Thrive,
    /// Block error correction and packet CRC gating.
    Bec,
    /// SIC rescue: replica reconstruction, subtraction and residual
    /// re-decode. The recorded span is inclusive of the nested
    /// detect/SigCalc/Thrive/BEC work of the residual decode.
    Sic,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Detect,
        Stage::Sync,
        Stage::SigCalc,
        Stage::Thrive,
        Stage::Bec,
        Stage::Sic,
    ];

    /// Stable lowercase name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Detect => "detect",
            Stage::Sync => "sync",
            Stage::SigCalc => "sigcalc",
            Stage::Thrive => "thrive",
            Stage::Bec => "bec",
            Stage::Sic => "sic",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Detect => 0,
            Stage::Sync => 1,
            Stage::SigCalc => 2,
            Stage::Thrive => 3,
            Stage::Bec => 4,
            Stage::Sic => 5,
        }
    }
}

/// A monotonically increasing event count (interior-mutable).
#[derive(Debug, Default)]
pub struct Counter(Cell<u64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Adds another counter's value (worker-merge; addition commutes, so
    /// the merged total is independent of worker scheduling).
    pub fn absorb(&self, other: &Counter) {
        self.add(other.get());
    }
}

/// A thread-safe, monotonically increasing event count for control-plane
/// services (the gateway daemon's ingest/backpressure/protocol counters).
///
/// Unlike [`Counter`], which is `Cell`-based and owned by exactly one
/// worker along the determinism boundary, a `SharedCounter` is `Sync` and
/// meant to be bumped concurrently from service threads whose ordering is
/// inherently nondeterministic (socket readers, per-connection decoders).
/// It must therefore never feed anything compared for byte-identity.
#[derive(Debug, Default)]
pub struct SharedCounter(AtomicU64);

impl SharedCounter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins measurement (interior-mutable).
#[derive(Debug, Default)]
pub struct Gauge(Cell<f64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }

    /// Keeps the maximum of the two gauges (worker-merge).
    pub fn absorb(&self, other: &Gauge) {
        if other.get() > self.get() {
            self.set(other.get());
        }
    }
}

/// Bucket count of [`Histogram`]: log₂ buckets up to 2⁴³ − 1 (≈ 2.4 hours
/// in nanoseconds), far beyond any single-trace decode.
pub const HISTOGRAM_BUCKETS: usize = 44;

/// A log₂-bucketed histogram of `u64` samples with exact count, sum, min
/// and max. Fixed-size storage: recording never allocates.
#[derive(Debug)]
pub struct Histogram {
    buckets: [Cell<u64>; HISTOGRAM_BUCKETS],
    count: Cell<u64>,
    sum: Cell<u64>,
    min: Cell<u64>,
    max: Cell<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| Cell::new(0)),
            count: Cell::new(0),
            sum: Cell::new(0),
            min: Cell::new(u64::MAX),
            max: Cell::new(0),
        }
    }
}

/// Bucket index of a value: 0 for 0, otherwise its bit length (clamped).
fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].set(self.buckets[bucket_of(v)].get() + 1);
        self.count.set(self.count.get() + 1);
        self.sum.set(self.sum.get().saturating_add(v));
        if v < self.min.get() {
            self.min.set(v);
        }
        if v > self.max.get() {
            self.max.set(v);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Merges another histogram in (bucket-wise addition; commutative).
    pub fn absorb(&self, other: &Histogram) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            a.set(a.get() + b.get());
        }
        self.count.set(self.count.get() + other.count.get());
        self.sum.set(self.sum.get().saturating_add(other.sum.get()));
        if other.min.get() < self.min.get() {
            self.min.set(other.min.get());
        }
        if other.max.get() > self.max.get() {
            self.max.set(other.max.get());
        }
    }

    /// Approximate `p`-quantile (0..=1): the upper bound of the bucket
    /// holding the target rank, clamped to the exact min/max.
    fn quantile(&self, p: f64) -> u64 {
        let count = self.count.get();
        if count == 0 {
            return 0;
        }
        let target = ((count as f64) * p).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.get();
            if cum >= target {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return upper.clamp(self.min.get(), self.max.get());
            }
        }
        self.max.get()
    }

    /// Plain-data summary of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.get();
        HistogramSnapshot {
            count,
            sum: self.sum.get(),
            min: if count == 0 { 0 } else { self.min.get() },
            max: self.max.get(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Plain-data summary of a [`Histogram`]. Percentiles are log₂-bucket
/// approximations (upper bucket bound); count/sum/min/max are exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (saturating).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Compact JSON object, e.g.
    /// `{"count":3,"sum":42,"min":2,"max":30,"p50":15,"p90":31,"p99":31}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            self.count, self.sum, self.min, self.max, self.p50, self.p90, self.p99
        )
    }
}

/// Deterministic per-stage event counts for one decode. Every field is
/// tied to a per-window, per-packet or per-slot event, so the totals are
/// identical between the serial receiver and the parallel receiver on the
/// same input — they are carried inside `DecodeReport` and compared with
/// `Eq` by the determinism tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Symbol-length windows scanned for preambles (per antenna).
    pub detect_windows: u64,
    /// Preamble runs found by the scan (validation candidates).
    pub detect_runs: u64,
    /// Duplicate detections dropped or replaced by deduplication.
    pub detect_duplicates: u64,
    /// Fractional synchronization searches launched.
    pub sync_attempts: u64,
    /// Searches that produced a synchronized packet.
    pub sync_accepted: u64,
    /// Aligned signal vectors computed (SigCalc cache misses).
    pub sigcalc_vectors: u64,
    /// Checking points with at least one participating symbol.
    pub thrive_checkpoints: u64,
    /// Peak candidates considered across all checkpoint slots.
    pub thrive_peaks_considered: u64,
    /// Peak assignments made (one per assignable slot).
    pub thrive_assignments: u64,
    /// Assignments that fell back to the strongest unmasked bin.
    pub thrive_fallbacks: u64,
    /// Checking points whose candidate lists were trimmed by the
    /// sibling-cost evaluation budget.
    pub thrive_budget_exhausted: u64,
    /// Header/payload block-decode invocations (BEC or default decoder).
    pub bec_calls: u64,
    /// Repair candidates generated by BEC across those calls.
    pub bec_candidates: u64,
    /// Packet-CRC evaluations performed.
    pub crc_checks: u64,
    /// Payload decodes whose CRC passed.
    pub crc_pass: u64,
    /// Payload decodes whose CRC never passed.
    pub crc_fail: u64,
    /// Payload decodes that hit the per-packet BEC candidate budget.
    pub bec_budget_exhausted: u64,
    /// SIC rescue rounds executed (per overlap component).
    pub sic_rounds: u64,
    /// Decoded-packet replicas subtracted from the IQ buffer.
    pub sic_subtracted: u64,
    /// Replica subtractions skipped by the residual-SNR gate.
    pub sic_skipped: u64,
    /// Packets newly detected on a post-subtraction residual.
    pub sic_redetections: u64,
    /// Packets decoded only by the SIC rescue pass.
    pub sic_rescues: u64,
}

impl StageCounters {
    /// Accumulates another set of counters field-wise.
    pub fn absorb(&mut self, other: &StageCounters) {
        self.detect_windows += other.detect_windows;
        self.detect_runs += other.detect_runs;
        self.detect_duplicates += other.detect_duplicates;
        self.sync_attempts += other.sync_attempts;
        self.sync_accepted += other.sync_accepted;
        self.sigcalc_vectors += other.sigcalc_vectors;
        self.thrive_checkpoints += other.thrive_checkpoints;
        self.thrive_peaks_considered += other.thrive_peaks_considered;
        self.thrive_assignments += other.thrive_assignments;
        self.thrive_fallbacks += other.thrive_fallbacks;
        self.thrive_budget_exhausted += other.thrive_budget_exhausted;
        self.bec_calls += other.bec_calls;
        self.bec_candidates += other.bec_candidates;
        self.crc_checks += other.crc_checks;
        self.crc_pass += other.crc_pass;
        self.crc_fail += other.crc_fail;
        self.bec_budget_exhausted += other.bec_budget_exhausted;
        self.sic_rounds += other.sic_rounds;
        self.sic_subtracted += other.sic_subtracted;
        self.sic_skipped += other.sic_skipped;
        self.sic_redetections += other.sic_redetections;
        self.sic_rescues += other.sic_rescues;
    }

    /// The counters belonging to `stage`, as (name, value) pairs — the
    /// grouping used by the human-readable table and the JSON report.
    pub fn stage_fields(&self, stage: Stage) -> Vec<(&'static str, u64)> {
        match stage {
            Stage::Detect => vec![
                ("windows", self.detect_windows),
                ("runs", self.detect_runs),
                ("duplicates", self.detect_duplicates),
            ],
            Stage::Sync => vec![
                ("attempts", self.sync_attempts),
                ("accepted", self.sync_accepted),
            ],
            Stage::SigCalc => vec![("vectors", self.sigcalc_vectors)],
            Stage::Thrive => vec![
                ("checkpoints", self.thrive_checkpoints),
                ("peaks_considered", self.thrive_peaks_considered),
                ("assignments", self.thrive_assignments),
                ("fallbacks", self.thrive_fallbacks),
                ("budget_exhausted", self.thrive_budget_exhausted),
            ],
            Stage::Bec => vec![
                ("calls", self.bec_calls),
                ("candidates", self.bec_candidates),
                ("crc_checks", self.crc_checks),
                ("crc_pass", self.crc_pass),
                ("crc_fail", self.crc_fail),
                ("budget_exhausted", self.bec_budget_exhausted),
            ],
            Stage::Sic => vec![
                ("rounds", self.sic_rounds),
                ("subtracted", self.sic_subtracted),
                ("skipped", self.sic_skipped),
                ("redetections", self.sic_redetections),
                ("rescues", self.sic_rescues),
            ],
        }
    }
}

/// Nondeterministic measurements of one decode: per-stage wall-time
/// histograms, matching-cost and BEC-candidate distributions, and a few
/// gauges. Interior-mutable so recording takes `&self`; deliberately not
/// `Sync` — each worker thread owns one and they are merged after join.
#[derive(Debug)]
pub struct PipelineMetrics {
    enabled: bool,
    /// Per-stage wall time in nanoseconds, one histogram per [`Stage`].
    wall: [Histogram; 6],
    /// Thrive matching costs in milli-units (cost × 1000).
    pub matching_cost_milli: Histogram,
    /// BEC candidate-set sizes per block-decode call.
    pub bec_candidates: Histogram,
    /// Scratch-pool reuse hits during the decode.
    pub pool_hits: Counter,
    /// Scratch-pool allocations (pool empty) during the decode.
    pub pool_misses: Counter,
    /// Decode clusters formed by the parallel receiver.
    pub clusters: Gauge,
    /// Worker threads used.
    pub workers: Gauge,
}

impl PipelineMetrics {
    fn with_enabled(enabled: bool) -> Self {
        PipelineMetrics {
            enabled,
            wall: std::array::from_fn(|_| Histogram::default()),
            matching_cost_milli: Histogram::default(),
            bec_candidates: Histogram::default(),
            pool_hits: Counter::default(),
            pool_misses: Counter::default(),
            clusters: Gauge::default(),
            workers: Gauge::default(),
        }
    }

    /// A recording instance.
    pub fn enabled() -> Self {
        Self::with_enabled(true)
    }

    /// A no-op instance: never reads the clock, records nothing.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    /// Whether this instance records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a span: `Some(now)` when enabled, `None` (no clock read)
    /// when disabled. Pair with [`Self::record_span`].
    pub fn now(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Ends a span started by [`Self::now`], recording the elapsed
    /// nanoseconds into `stage`'s wall-time histogram. No-op on `None`.
    pub fn record_span(&self, stage: Stage, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.wall[stage.index()].record(ns);
        }
    }

    /// Records a Thrive matching cost (milli-units) when enabled.
    pub fn record_cost(&self, cost_milli: u64) {
        if self.enabled {
            self.matching_cost_milli.record(cost_milli);
        }
    }

    /// Records a BEC candidate-set size when enabled.
    pub fn record_bec_candidates(&self, n: u64) {
        if self.enabled {
            self.bec_candidates.record(n);
        }
    }

    /// Wall-time histogram of one stage.
    pub fn wall(&self, stage: Stage) -> &Histogram {
        &self.wall[stage.index()]
    }

    /// Merges a worker's metrics in. Histogram and counter merges are
    /// commutative sums, so the aggregate is independent of worker
    /// scheduling; gauges keep their maximum.
    pub fn absorb(&self, other: &PipelineMetrics) {
        for (a, b) in self.wall.iter().zip(other.wall.iter()) {
            a.absorb(b);
        }
        self.matching_cost_milli.absorb(&other.matching_cost_milli);
        self.bec_candidates.absorb(&other.bec_candidates);
        self.pool_hits.absorb(&other.pool_hits);
        self.pool_misses.absorb(&other.pool_misses);
        self.clusters.absorb(&other.clusters);
        self.workers.absorb(&other.workers);
    }

    /// Plain-data snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            stage_wall_ns: std::array::from_fn(|i| self.wall[i].snapshot()),
            matching_cost_milli: self.matching_cost_milli.snapshot(),
            bec_candidates: self.bec_candidates.snapshot(),
            pool_hits: self.pool_hits.get(),
            pool_misses: self.pool_misses.get(),
            clusters: self.clusters.get(),
            workers: self.workers.get(),
        }
    }
}

/// Plain-data snapshot of a [`PipelineMetrics`] — safe to move across
/// threads, store in results, or serialize.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Wall-time summaries indexed like [`Stage::ALL`].
    pub stage_wall_ns: [HistogramSnapshot; 6],
    /// Thrive matching-cost distribution (milli-units).
    pub matching_cost_milli: HistogramSnapshot,
    /// BEC candidate-set-size distribution.
    pub bec_candidates: HistogramSnapshot,
    /// Scratch-pool reuse hits.
    pub pool_hits: u64,
    /// Scratch-pool allocations.
    pub pool_misses: u64,
    /// Decode clusters formed (parallel receiver; 0 for serial).
    pub clusters: f64,
    /// Worker threads used (0 for serial).
    pub workers: f64,
}

impl MetricsSnapshot {
    /// Wall-time summary of one stage.
    pub fn wall(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stage_wall_ns[stage.index()]
    }

    /// Total recorded wall time across all stages, in nanoseconds.
    pub fn total_wall_ns(&self) -> u64 {
        self.stage_wall_ns.iter().map(|h| h.sum).sum()
    }

    /// Compact JSON object with per-stage timings, distributions and
    /// gauges (stage counters live in `DecodeReport`, not here).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"timings_ns\":{");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{}",
                stage.name(),
                self.wall(*stage).to_json()
            ));
        }
        out.push_str(&format!(
            "}},\"matching_cost_milli\":{},\"bec_candidates\":{},\
             \"pool\":{{\"hits\":{},\"misses\":{}}},\"clusters\":{},\"workers\":{}}}",
            self.matching_cost_milli.to_json(),
            self.bec_candidates.to_json(),
            self.pool_hits,
            self.pool_misses,
            self.clusters,
            self.workers
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_absorbs() {
        let a = Counter::default();
        let b = Counter::default();
        a.inc();
        a.add(4);
        b.add(10);
        a.absorb(&b);
        assert_eq!(a.get(), 15);
        assert_eq!(b.get(), 10);
    }

    #[test]
    fn shared_counter_is_sync_and_sums() {
        let c = std::sync::Arc::new(SharedCounter::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
                c.add(5);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4 * 1005);
    }

    #[test]
    fn gauge_absorb_keeps_max() {
        let a = Gauge::default();
        let b = Gauge::default();
        a.set(3.0);
        b.set(7.0);
        a.absorb(&b);
        assert_eq!(a.get(), 7.0);
        b.absorb(&a);
        assert_eq!(b.get(), 7.0);
    }

    #[test]
    fn histogram_counts_and_bounds() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert!(s.p50 >= 2 && s.p50 <= 100, "p50 {}", s.p50);
        assert!(s.p99 >= 100, "p99 {}", s.p99);
        assert!((s.mean() - 1106.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_absorb_merges() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.record(5);
        b.record(500);
        a.absorb(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 500);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn huge_values_clamp_to_last_bucket() {
        let h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p50, u64::MAX); // clamped to the exact max
    }

    #[test]
    fn disabled_metrics_never_read_clock() {
        let m = PipelineMetrics::disabled();
        assert!(m.now().is_none());
        m.record_span(Stage::Detect, None);
        m.record_cost(5);
        m.record_bec_candidates(3);
        let s = m.snapshot();
        assert_eq!(s.total_wall_ns(), 0);
        assert_eq!(s.matching_cost_milli.count, 0);
        assert_eq!(s.bec_candidates.count, 0);
    }

    #[test]
    fn enabled_metrics_record_spans() {
        let m = PipelineMetrics::enabled();
        let t0 = m.now();
        assert!(t0.is_some());
        m.record_span(Stage::Thrive, t0);
        assert_eq!(m.wall(Stage::Thrive).count(), 1);
        assert_eq!(m.wall(Stage::Detect).count(), 0);
        let s = m.snapshot();
        assert_eq!(s.wall(Stage::Thrive).count, 1);
    }

    #[test]
    fn absorb_sums_worker_metrics() {
        let main = PipelineMetrics::enabled();
        let worker = PipelineMetrics::enabled();
        worker.record_cost(250);
        worker.pool_hits.add(3);
        worker.record_span(Stage::Bec, worker.now());
        main.record_cost(800);
        main.absorb(&worker);
        let s = main.snapshot();
        assert_eq!(s.matching_cost_milli.count, 2);
        assert_eq!(s.pool_hits, 3);
        assert_eq!(s.wall(Stage::Bec).count, 1);
    }

    #[test]
    fn stage_counters_absorb_and_group() {
        let mut a = StageCounters {
            detect_windows: 10,
            crc_pass: 1,
            ..StageCounters::default()
        };
        let b = StageCounters {
            detect_windows: 5,
            crc_fail: 2,
            ..StageCounters::default()
        };
        a.absorb(&b);
        assert_eq!(a.detect_windows, 15);
        assert_eq!(a.crc_fail, 2);
        // Every stage exposes at least one named counter, and every field
        // belongs to exactly one stage (3+2+1+5+6+5 = 22 fields).
        let total: usize = Stage::ALL.iter().map(|s| a.stage_fields(*s).len()).sum();
        assert_eq!(total, 22);
    }

    #[test]
    fn snapshot_json_is_wellformed_enough() {
        let m = PipelineMetrics::enabled();
        m.record_span(Stage::Detect, m.now());
        let json = m.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for s in Stage::ALL {
            assert!(json.contains(&format!("\"{}\":", s.name())), "{json}");
        }
        assert!(json.contains("\"timings_ns\""));
        assert!(json.contains("\"pool\""));
        // Balanced braces (no nested strings in this format).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }
}
