//! Scalar-vs-SIMD bit-exactness, property-tested.
//!
//! Every dispatched kernel must return **bitwise identical** results
//! under the scalar backend and the best SIMD backend this host
//! supports (AVX2 or NEON) — across power-of-two-times-OSF sizes,
//! unaligned slice offsets, and NaN/Inf-poisoned inputs — for every
//! **non-NaN** output, and NaN outputs must be NaN at the same sites
//! under both backends. NaN *payload* bits are outside the contract:
//! LLVM treats `fmul`/`fadd` as commutative, so the optimized scalar
//! build itself is free to propagate either operand's payload, and
//! which one survives varies by codegen context (comparisons below
//! canonicalize every NaN to one bit pattern before demanding exact
//! bits). `find_peaks`, whose sanitizer and selectivity default ride
//! on `all_finite`/`min_max`, must report identical peaks under both
//! backends.
//!
//! `simd::force` mutates process-global dispatch state, so every test
//! case serializes through one mutex.

use std::sync::Mutex;

use proptest::prelude::*;
use tnb_dsp::peakfinder::{find_peaks, PeakFinderConfig};
use tnb_dsp::simd::{self, Backend};
use tnb_dsp::Complex32;

/// Serializes all `force()` flips: the active backend is process-global.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// The best non-scalar backend this host can execute, if any. On hosts
/// with neither AVX2 nor NEON the parity tests degenerate to
/// scalar-vs-scalar, which is vacuously exact but keeps the suite
/// portable.
fn simd_backend() -> Option<Backend> {
    [Backend::Avx2, Backend::Neon]
        .into_iter()
        .find(|&b| simd::supported(b))
}

/// Runs `f` under backend `b` (caller holds [`BACKEND_LOCK`]).
fn under<T>(b: Backend, f: impl FnOnce() -> T) -> T {
    assert!(simd::force(b), "backend {b:?} must be supported here");
    f()
}

/// Runs `f` under scalar and under the best SIMD backend, returning
/// both results for comparison.
fn scalar_vs_simd<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scalar = under(Backend::Scalar, &f);
    let vector = under(simd_backend().unwrap_or(Backend::Scalar), &f);
    (scalar, vector)
}

/// Deterministic xorshift word stream.
fn words(seed: u64, n: usize) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        })
        .collect()
}

/// `n` floats derived from raw bit patterns; roughly one in eight is
/// poisoned with a special value (NaNs with varied payloads, ±Inf,
/// negative zero, subnormals survive from the raw-bits path anyway).
fn poisoned_f32(seed: u64, n: usize) -> Vec<f32> {
    words(seed, n)
        .into_iter()
        .map(|w| {
            if w & 0x7 == 0 {
                match (w >> 3) & 0x3 {
                    0 => f32::from_bits(0x7FC0_0000 | (w >> 40) as u32 & 0x003F_FFFF),
                    1 => f32::INFINITY,
                    2 => f32::NEG_INFINITY,
                    _ => -0.0,
                }
            } else {
                // Raw bits, squashed away from the exponent extremes so
                // most values are ordinary finite floats.
                f32::from_bits((w as u32 & 0xC7FF_FFFF) | 0x3800_0000)
            }
        })
        .collect()
}

/// Finite-only variant (clean traces must stay on the fast paths).
fn finite_f32(seed: u64, n: usize) -> Vec<f32> {
    words(seed, n)
        .into_iter()
        .map(|w| ((w & 0xFFFF) as f32 / 32768.0 - 1.0) * 1.0e3)
        .collect()
}

fn poisoned_c32(seed: u64, n: usize) -> Vec<Complex32> {
    let re = poisoned_f32(seed, n);
    let im = poisoned_f32(seed ^ 0x9E37_79B9_7F4A_7C15, n);
    re.into_iter()
        .zip(im)
        .map(|(re, im)| Complex32 { re, im })
        .collect()
}

/// NaN-canonicalizing bit image: every NaN maps to one quiet-NaN
/// pattern, everything else (±Inf, ±0, subnormals) keeps its exact
/// bits. See the module docs for why NaN payloads are out of scope.
fn canon_bits(v: f32) -> u32 {
    if v.is_nan() {
        0x7FC0_0000
    } else {
        v.to_bits()
    }
}

fn bits_f32(x: &[f32]) -> Vec<u32> {
    x.iter().map(|&v| canon_bits(v)).collect()
}

fn bits_c32(x: &[Complex32]) -> Vec<(u32, u32)> {
    x.iter()
        .map(|z| (canon_bits(z.re), canon_bits(z.im)))
        .collect()
}

/// Sizes the demodulator actually uses: `2^e × OSF` for `e` in 6..=12
/// (OSF 8 is the repo default), plus the raw power of two.
fn kernel_len(e: u32, with_osf: bool) -> usize {
    (1usize << e) * if with_osf { 8 } else { 1 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cmul_and_cmul_assign_bitwise_parity(
        seed in 0u64..100_000,
        e in 6u32..=12,
        with_osf in any::<bool>(),
        off in 0usize..7,
    ) {
        let n = kernel_len(e, with_osf);
        let a = poisoned_c32(seed, n + off);
        let b = poisoned_c32(seed.wrapping_add(1), n + off);
        let (s, v) = scalar_vs_simd(|| {
            let mut out = vec![Complex32::ZERO; n];
            simd::cmul(&a[off..], &b[off..], &mut out);
            let mut buf = a[off..].to_vec();
            simd::cmul_assign(&mut buf, &b[off..]);
            (bits_c32(&out), bits_c32(&buf))
        });
        prop_assert_eq!(s, v);
    }

    #[test]
    fn butterfly_bitwise_parity(
        seed in 0u64..100_000,
        e in 6u32..=12,
        conj_tw in any::<bool>(),
        off in 0usize..7,
    ) {
        let half = kernel_len(e, false);
        let a0 = poisoned_c32(seed, half + off);
        let b0 = poisoned_c32(seed.wrapping_add(2), half + off);
        let tw = poisoned_c32(seed.wrapping_add(3), half + off);
        let (s, v) = scalar_vs_simd(|| {
            let mut a = a0[off..].to_vec();
            let mut b = b0[off..].to_vec();
            simd::butterfly(&mut a, &mut b, &tw[off..], conj_tw);
            (bits_c32(&a), bits_c32(&b))
        });
        prop_assert_eq!(s, v);
    }

    #[test]
    fn fold_mag_bitwise_parity(
        seed in 0u64..100_000,
        e in 6u32..=12,
        off in 0usize..7,
        tail in 0usize..5,
    ) {
        let n = kernel_len(e, false);
        let front = poisoned_c32(seed, n + off);
        // `back` deliberately shorter: the fold's ragged tail (the last
        // `n - l + n` bins have no back half) must trim identically.
        let back = poisoned_c32(seed.wrapping_add(4), n.saturating_sub(tail) + off);
        let (s, v) = scalar_vs_simd(|| {
            let mut out = vec![0.0f32; n];
            simd::fold_mag(&front[off..], &back[off..], &mut out);
            bits_f32(&out)
        });
        prop_assert_eq!(s, v);
    }

    #[test]
    fn min_max_and_all_finite_bitwise_parity(
        seed in 0u64..100_000,
        n in 1usize..2_000,
        off in 0usize..7,
        clean in any::<bool>(),
    ) {
        let x = if clean {
            finite_f32(seed, n + off)
        } else {
            poisoned_f32(seed, n + off)
        };
        let (s, v) = scalar_vs_simd(|| {
            let (lo, hi) = simd::min_max(&x[off..]);
            (canon_bits(lo), canon_bits(hi), simd::all_finite(&x[off..]))
        });
        prop_assert_eq!(s, v);
        // all_finite agrees with the scalar definition exactly.
        prop_assert_eq!(s.2, x[off..].iter().all(|v| v.is_finite()));
    }

    #[test]
    fn find_peaks_identical_under_both_backends(
        seed in 0u64..100_000,
        n in 3usize..1_500,
        circular in any::<bool>(),
        clean in any::<bool>(),
    ) {
        let x = if clean {
            finite_f32(seed, n)
        } else {
            poisoned_f32(seed, n)
        };
        let cfg = PeakFinderConfig {
            circular,
            max_peaks: Some(16),
            ..PeakFinderConfig::default()
        };
        let (s, v) = scalar_vs_simd(|| {
            find_peaks(&x, &cfg)
                .into_iter()
                .map(|p| (p.index, canon_bits(p.height)))
                .collect::<Vec<_>>()
        });
        prop_assert_eq!(s, v);
    }
}

#[test]
fn empty_and_degenerate_inputs_match() {
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for b in [Backend::Scalar, simd_backend().unwrap_or(Backend::Scalar)] {
        under(b, || {
            assert_eq!(
                simd::min_max(&[]),
                (f32::INFINITY, f32::NEG_INFINITY),
                "{b:?}"
            );
            assert!(simd::all_finite(&[]), "{b:?}");
            let mut out: Vec<Complex32> = Vec::new();
            simd::cmul(&[], &[], &mut out);
            assert!(out.is_empty(), "{b:?}");
            let mut mags: Vec<f32> = Vec::new();
            simd::fold_mag(&[], &[], &mut mags);
            assert!(mags.is_empty(), "{b:?}");
        });
    }
}

#[test]
fn force_rejects_unsupported_backends() {
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let unsupported: Vec<Backend> = [Backend::Avx2, Backend::Neon]
        .into_iter()
        .filter(|&b| !simd::supported(b))
        .collect();
    for b in unsupported {
        assert!(
            !simd::force(b),
            "force({b:?}) accepted an unsupported backend"
        );
    }
    // Scalar is always accepted, and active() reflects the pin.
    assert!(simd::force(Backend::Scalar));
    assert_eq!(simd::active(), Backend::Scalar);
}
