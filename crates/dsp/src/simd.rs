//! Runtime-dispatched SIMD kernels for the three hot inner loops of the
//! decode pipeline: the de-chirp complex multiply, the radix-2 FFT
//! butterfly pass, and the magnitude/peak scan.
//!
//! # Dispatch-once rule
//!
//! The backend is chosen once, on first kernel call, and cached in an
//! atomic: `TNB_SIMD=scalar|avx2|neon|auto` overrides detection (an
//! unsupported request falls back to scalar), otherwise the best backend
//! the CPU supports wins. Tests pin a backend with [`force`]; production
//! code never re-detects, so a long-running gateway cannot change kernels
//! mid-stream.
//!
//! # Bit-exactness contract
//!
//! Every vector kernel is **bit-identical** to its scalar reference for
//! every input, including non-finite values:
//!
//! - Complex multiplies keep the exact scalar operand order
//!   (`re·re − im·im`, `re·im + im·re`) using independent vector
//!   multiplies plus `addsub`/`add`/`sub` — never FMA, whose single
//!   rounding would diverge. Per-lane IEEE-754 ops round identically to
//!   their scalar counterparts, and matching operand *order* preserves
//!   NaN-payload propagation too.
//! - Magnitudes use `sqrt`, which IEEE requires to be correctly rounded
//!   in both scalar and vector forms.
//! - The min/max scan maps floats to totally ordered integer keys (the
//!   IEEE-754 `totalOrder` trick), making the reduction associative and
//!   order-independent — the same bits fall out no matter how lanes are
//!   combined.
//!
//! The kernels sit inside `tnb-lint: no_alloc` regions: they are called
//! per symbol from the receiver hot path and must never allocate or
//! panic (lengths are trimmed to the common prefix instead of asserted).

use crate::complex::Complex32;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation services the hot loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar kernels — the reference semantics.
    Scalar,
    /// 256-bit AVX2 kernels (x86_64, runtime-detected).
    Avx2,
    /// 128-bit NEON kernels (aarch64, baseline feature).
    Neon,
}

impl Backend {
    /// Lower-case name, as accepted by the `TNB_SIMD` override.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    fn code(self) -> u8 {
        match self {
            Backend::Scalar => 1,
            Backend::Avx2 => 2,
            Backend::Neon => 3,
        }
    }
}

/// 0 = not yet resolved; otherwise a [`Backend::code`].
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// True when this host can execute `b`'s kernels.
pub fn supported(b: Backend) -> bool {
    match b {
        Backend::Scalar => true,
        Backend::Avx2 => avx2_available(),
        Backend::Neon => cfg!(target_arch = "aarch64"),
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

/// The backend in effect, resolved on first use and cached (the
/// dispatch-once rule). Resolution order: a supported `TNB_SIMD`
/// override, then the best backend the CPU supports, then scalar.
pub fn active() -> Backend {
    match ACTIVE.load(Ordering::Relaxed) {
        2 => Backend::Avx2,
        3 => Backend::Neon,
        1 => Backend::Scalar,
        _ => {
            let b = resolve();
            ACTIVE.store(b.code(), Ordering::Relaxed);
            b
        }
    }
}

fn resolve() -> Backend {
    let requested = std::env::var("TNB_SIMD").unwrap_or_default();
    let by_env = match requested.as_str() {
        "scalar" => Some(Backend::Scalar),
        "avx2" => Some(Backend::Avx2),
        "neon" => Some(Backend::Neon),
        _ => None,
    };
    match by_env {
        // An explicitly requested but unsupported backend degrades to
        // scalar rather than crashing: the scalar path is always correct.
        Some(b) => {
            if supported(b) {
                b
            } else {
                Backend::Scalar
            }
        }
        None => {
            if supported(Backend::Avx2) {
                Backend::Avx2
            } else if supported(Backend::Neon) {
                Backend::Neon
            } else {
                Backend::Scalar
            }
        }
    }
}

/// Pins `b` for all subsequent kernel calls (tests and the scalar
/// override knob). Returns `false`, leaving the active backend
/// unchanged, when the host cannot execute `b`.
pub fn force(b: Backend) -> bool {
    if supported(b) {
        ACTIVE.store(b.code(), Ordering::Relaxed);
        true
    } else {
        false
    }
}

// ---------------------------------------------------------------------
// Public dispatching kernels
// ---------------------------------------------------------------------

/// Elementwise complex multiply `out[i] = a[i] * b[i]` over the common
/// prefix of the three slices — the de-chirp inner loop.
// tnb-lint: no_alloc
pub fn cmul(a: &[Complex32], b: &[Complex32], out: &mut [Complex32]) {
    match active() {
        // SAFETY: `Backend::Avx2` is only ever stored (resolve/force)
        // after `is_x86_feature_detected!("avx2")` confirmed support.
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::cmul(a, b, out) },
        // SAFETY: NEON is a baseline aarch64 feature; `Backend::Neon`
        // is only ever selected on aarch64 hosts.
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::cmul(a, b, out) },
        _ => cmul_scalar(a, b, out, 0),
    }
}

/// In-place elementwise complex multiply `buf[i] *= rhs[i]` over the
/// common prefix — the CFO-rotation half of the de-chirp.
// tnb-lint: no_alloc
pub fn cmul_assign(buf: &mut [Complex32], rhs: &[Complex32]) {
    match active() {
        // SAFETY: `Backend::Avx2` is only ever stored (resolve/force)
        // after `is_x86_feature_detected!("avx2")` confirmed support.
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::cmul_assign(buf, rhs) },
        // SAFETY: NEON is a baseline aarch64 feature; `Backend::Neon`
        // is only ever selected on aarch64 hosts.
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::cmul_assign(buf, rhs) },
        _ => cmul_assign_scalar(buf, rhs, 0),
    }
}

/// One radix-2 butterfly pass over paired half-blocks: with
/// `t = b[k] * w[k]` (conjugating `w` for the inverse transform),
/// `a[k] ← a[k] + t` and `b[k] ← a[k] − t`. Operates on the common
/// prefix of `a`, `b` and `tw`.
// tnb-lint: no_alloc
pub fn butterfly(a: &mut [Complex32], b: &mut [Complex32], tw: &[Complex32], conj_tw: bool) {
    match active() {
        // SAFETY: `Backend::Avx2` is only ever stored (resolve/force)
        // after `is_x86_feature_detected!("avx2")` confirmed support.
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::butterfly(a, b, tw, conj_tw) },
        // SAFETY: NEON is a baseline aarch64 feature; `Backend::Neon`
        // is only ever selected on aarch64 hosts.
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::butterfly(a, b, tw, conj_tw) },
        _ => butterfly_scalar(a, b, tw, conj_tw, 0),
    }
}

/// Folded signal-vector magnitude `out[k] = (|front[k]| + |back[k]|)²`
/// over the common prefix — the paper's `Y[k]` fold after the FFT.
// tnb-lint: no_alloc
pub fn fold_mag(front: &[Complex32], back: &[Complex32], out: &mut [f32]) {
    match active() {
        // SAFETY: `Backend::Avx2` is only ever stored (resolve/force)
        // after `is_x86_feature_detected!("avx2")` confirmed support.
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::fold_mag(front, back, out) },
        // SAFETY: NEON is a baseline aarch64 feature; `Backend::Neon`
        // is only ever selected on aarch64 hosts.
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::fold_mag(front, back, out) },
        _ => fold_mag_scalar(front, back, out, 0),
    }
}

/// Minimum and maximum of `x` under the IEEE-754 total order (so the
/// result is bitwise deterministic for *any* input, NaN included, and
/// independent of lane/reduction order). Returns
/// `(f32::INFINITY, f32::NEG_INFINITY)` for an empty slice.
// tnb-lint: no_alloc
pub fn min_max(x: &[f32]) -> (f32, f32) {
    if x.is_empty() {
        return (f32::INFINITY, f32::NEG_INFINITY);
    }
    let (lo, hi) = match active() {
        // SAFETY: `Backend::Avx2` is only ever stored (resolve/force)
        // after `is_x86_feature_detected!("avx2")` confirmed support.
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::min_max_keys(x) },
        // SAFETY: NEON is a baseline aarch64 feature; `Backend::Neon`
        // is only ever selected on aarch64 hosts.
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::min_max_keys(x) },
        _ => min_max_keys_scalar(x, 0, (i32::MAX, i32::MIN)),
    };
    (f32_from_key(lo), f32_from_key(hi))
}

/// True when every element of `x` is finite (the peak-scan sanitizer
/// pre-check). Exact: tests the exponent bits, like `f32::is_finite`.
// tnb-lint: no_alloc
pub fn all_finite(x: &[f32]) -> bool {
    match active() {
        // SAFETY: `Backend::Avx2` is only ever stored (resolve/force)
        // after `is_x86_feature_detected!("avx2")` confirmed support.
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::all_finite(x) },
        // SAFETY: NEON is a baseline aarch64 feature; `Backend::Neon`
        // is only ever selected on aarch64 hosts.
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::all_finite(x) },
        _ => all_finite_scalar(x, 0),
    }
}

// ---------------------------------------------------------------------
// Scalar reference kernels (also the remainder loops of the vector
// paths, entered at `skip` elements in).
// ---------------------------------------------------------------------

// tnb-lint: no_alloc
fn cmul_scalar(a: &[Complex32], b: &[Complex32], out: &mut [Complex32], skip: usize) {
    for ((&x, &y), o) in a.iter().zip(b).zip(out.iter_mut()).skip(skip) {
        *o = x * y;
    }
}

// tnb-lint: no_alloc
fn cmul_assign_scalar(buf: &mut [Complex32], rhs: &[Complex32], skip: usize) {
    for (o, &y) in buf.iter_mut().zip(rhs).skip(skip) {
        *o *= y;
    }
}

// tnb-lint: no_alloc
fn butterfly_scalar(
    a: &mut [Complex32],
    b: &mut [Complex32],
    tw: &[Complex32],
    conj_tw: bool,
    skip: usize,
) {
    for ((x, y), &w0) in a.iter_mut().zip(b.iter_mut()).zip(tw).skip(skip) {
        let w = if conj_tw { w0.conj() } else { w0 };
        let t = *y * w;
        let u = *x;
        *x = u + t;
        *y = u - t;
    }
}

// tnb-lint: no_alloc
fn fold_mag_scalar(front: &[Complex32], back: &[Complex32], out: &mut [f32], skip: usize) {
    for ((&f, &b), o) in front.iter().zip(back).zip(out.iter_mut()).skip(skip) {
        let m = f.abs() + b.abs();
        *o = m * m;
    }
}

/// Monotone bijection from `f32` bit patterns to `i32` keys ordered by
/// the IEEE-754 total order. It is an involution on the bit level, so
/// [`f32_from_key`] applies the same transform to invert it.
#[inline]
fn key_from_f32(v: f32) -> i32 {
    let b = v.to_bits() as i32;
    b ^ (((b >> 31) as u32) >> 1) as i32
}

#[inline]
fn f32_from_key(k: i32) -> f32 {
    f32::from_bits((k ^ (((k >> 31) as u32) >> 1) as i32) as u32)
}

// tnb-lint: no_alloc
fn min_max_keys_scalar(x: &[f32], skip: usize, init: (i32, i32)) -> (i32, i32) {
    let (mut lo, mut hi) = init;
    for &v in x.iter().skip(skip) {
        let k = key_from_f32(v);
        lo = lo.min(k);
        hi = hi.max(k);
    }
    (lo, hi)
}

#[inline]
fn finite_bits(v: f32) -> bool {
    (v.to_bits() & 0x7F80_0000) != 0x7F80_0000
}

// tnb-lint: no_alloc
fn all_finite_scalar(x: &[f32], skip: usize) -> bool {
    x.iter().skip(skip).all(|&v| finite_bits(v))
}

// ---------------------------------------------------------------------
// AVX2 kernels (x86_64)
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::Complex32;
    use std::arch::x86_64::*;

    /// See [`super::cmul`].
    ///
    /// # Safety
    /// The CPU must support AVX2 (the dispatcher guarantees it).
    // tnb-lint: no_alloc
    #[target_feature(enable = "avx2")]
    // SAFETY: callers are gated on runtime AVX2 detection; all pointer
    // arithmetic below stays within the common prefix of the slices
    // (Complex32 is `repr(C)` — n complexes are exactly 2n packed f32s).
    pub unsafe fn cmul(a: &[Complex32], b: &[Complex32], out: &mut [Complex32]) {
        let n = a.len().min(b.len()).min(out.len());
        let quads = n / 4;
        let ap = a.as_ptr().cast::<f32>();
        let bp = b.as_ptr().cast::<f32>();
        let op = out.as_mut_ptr().cast::<f32>();
        for q in 0..quads {
            let av = _mm256_loadu_ps(ap.add(q * 8));
            let bv = _mm256_loadu_ps(bp.add(q * 8));
            _mm256_storeu_ps(op.add(q * 8), mul4(av, bv));
        }
        super::cmul_scalar(a, b, out, quads * 4);
    }

    /// See [`super::cmul_assign`].
    ///
    /// # Safety
    /// The CPU must support AVX2 (the dispatcher guarantees it).
    // tnb-lint: no_alloc
    // SAFETY: callers are gated on runtime AVX2 detection; pointer
    // arithmetic stays within the common prefix of the slices.
    #[target_feature(enable = "avx2")]
    pub unsafe fn cmul_assign(buf: &mut [Complex32], rhs: &[Complex32]) {
        let n = buf.len().min(rhs.len());
        let quads = n / 4;
        let bp = buf.as_mut_ptr().cast::<f32>();
        let rp = rhs.as_ptr().cast::<f32>();
        for q in 0..quads {
            let av = _mm256_loadu_ps(bp.add(q * 8));
            let bv = _mm256_loadu_ps(rp.add(q * 8));
            _mm256_storeu_ps(bp.add(q * 8), mul4(av, bv));
        }
        super::cmul_assign_scalar(buf, rhs, quads * 4);
    }

    /// Four complex products `a ⊙ b` in scalar operand order:
    /// `re = a.re·b.re − a.im·b.im`, `im = a.re·b.im + a.im·b.re`,
    /// via two independent multiplies and one `addsub` (no FMA).
    ///
    /// # Safety
    /// The CPU must support AVX2 (callers are `target_feature(avx2)`).
    // tnb-lint: no_alloc
    // SAFETY: pure register arithmetic, no memory access.
    #[target_feature(enable = "avx2")]
    unsafe fn mul4(av: __m256, bv: __m256) -> __m256 {
        let a_re = _mm256_moveldup_ps(av); // lanes (a0.re, a0.re, a1.re, …)
        let a_im = _mm256_movehdup_ps(av); // lanes (a0.im, a0.im, a1.im, …)
        let b_swap = _mm256_permute_ps(bv, 0xB1); // pairwise (im, re) swap
        let x = _mm256_mul_ps(a_re, bv); // even: re·re   odd: re·im
        let y = _mm256_mul_ps(a_im, b_swap); // even: im·im   odd: im·re
        _mm256_addsub_ps(x, y) // even: x − y   odd: x + y
    }

    /// See [`super::butterfly`].
    ///
    /// # Safety
    /// The CPU must support AVX2 (the dispatcher guarantees it).
    // tnb-lint: no_alloc
    // SAFETY: callers are gated on runtime AVX2 detection; pointer
    // arithmetic stays within the common prefix of the slices.
    #[target_feature(enable = "avx2")]
    pub unsafe fn butterfly(
        a: &mut [Complex32],
        b: &mut [Complex32],
        tw: &[Complex32],
        conj_tw: bool,
    ) {
        let half = a.len().min(b.len()).min(tw.len());
        let quads = half / 4;
        let ap = a.as_mut_ptr().cast::<f32>();
        let bp = b.as_mut_ptr().cast::<f32>();
        let tp = tw.as_ptr().cast::<f32>();
        // Sign-flip mask for the imaginary lanes: conjugation is an
        // exact bit operation, identical to the scalar `-im`.
        let conj_mask = _mm256_setr_ps(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0);
        for q in 0..quads {
            let mut wv = _mm256_loadu_ps(tp.add(q * 8));
            if conj_tw {
                wv = _mm256_xor_ps(wv, conj_mask);
            }
            let bv = _mm256_loadu_ps(bp.add(q * 8));
            let t = mul4(bv, wv); // b[k] * w in scalar operand order
            let av = _mm256_loadu_ps(ap.add(q * 8));
            _mm256_storeu_ps(ap.add(q * 8), _mm256_add_ps(av, t));
            _mm256_storeu_ps(bp.add(q * 8), _mm256_sub_ps(av, t));
        }
        super::butterfly_scalar(a, b, tw, conj_tw, quads * 4);
    }

    /// See [`super::fold_mag`].
    ///
    /// # Safety
    /// The CPU must support AVX2 (the dispatcher guarantees it).
    // tnb-lint: no_alloc
    // SAFETY: callers are gated on runtime AVX2 detection; pointer
    // arithmetic stays within the common prefix of the slices.
    #[target_feature(enable = "avx2")]
    pub unsafe fn fold_mag(front: &[Complex32], back: &[Complex32], out: &mut [f32]) {
        let n = front.len().min(back.len()).min(out.len());
        let quads = n / 4;
        let fp = front.as_ptr().cast::<f32>();
        let bp = back.as_ptr().cast::<f32>();
        let op = out.as_mut_ptr();
        // Gathers the even (valid) lanes of the result into the low half.
        let even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
        for q in 0..quads {
            let f = _mm256_loadu_ps(fp.add(q * 8));
            let b = _mm256_loadu_ps(bp.add(q * 8));
            let fsq = _mm256_mul_ps(f, f);
            let bsq = _mm256_mul_ps(b, b);
            // Even lanes: re² + im² in scalar order (re² is the first
            // addend, as in `norm_sqr`); odd lanes are discarded.
            let fns = _mm256_add_ps(fsq, _mm256_permute_ps(fsq, 0xB1));
            let bns = _mm256_add_ps(bsq, _mm256_permute_ps(bsq, 0xB1));
            let fab = _mm256_sqrt_ps(fns); // correctly rounded, like .sqrt()
            let bab = _mm256_sqrt_ps(bns);
            let m = _mm256_add_ps(fab, bab); // |front| first, as in scalar
            let y = _mm256_mul_ps(m, m);
            let packed = _mm256_permutevar8x32_ps(y, even);
            _mm_storeu_ps(op.add(q * 4), _mm256_castps256_ps128(packed));
        }
        super::fold_mag_scalar(front, back, out, quads * 4);
    }

    /// See [`super::min_max`]; returns total-order integer keys.
    ///
    /// # Safety
    /// The CPU must support AVX2 (the dispatcher guarantees it).
    // tnb-lint: no_alloc
    // SAFETY: callers are gated on runtime AVX2 detection; pointer
    // arithmetic stays within `x`; the store targets a local array.
    #[target_feature(enable = "avx2")]
    pub unsafe fn min_max_keys(x: &[f32]) -> (i32, i32) {
        let lanes = x.len() / 8;
        let p = x.as_ptr();
        let mut lo_v = _mm256_set1_epi32(i32::MAX);
        let mut hi_v = _mm256_set1_epi32(i32::MIN);
        for q in 0..lanes {
            let v = _mm256_loadu_si256(p.add(q * 8).cast());
            // Total-order key: b ^ ((b >>a 31) >>l 1) — flips the value
            // bits of negatives so integer compare matches totalOrder.
            let sign = _mm256_srai_epi32(v, 31);
            let flip = _mm256_srli_epi32(sign, 1);
            let k = _mm256_xor_si256(v, flip);
            lo_v = _mm256_min_epi32(lo_v, k);
            hi_v = _mm256_max_epi32(hi_v, k);
        }
        let mut lo_a = [0i32; 8];
        let mut hi_a = [0i32; 8];
        _mm256_storeu_si256(lo_a.as_mut_ptr().cast(), lo_v);
        _mm256_storeu_si256(hi_a.as_mut_ptr().cast(), hi_v);
        let mut lo = i32::MAX;
        let mut hi = i32::MIN;
        for i in 0..8 {
            lo = lo.min(lo_a[i]);
            hi = hi.max(hi_a[i]);
        }
        super::min_max_keys_scalar(x, lanes * 8, (lo, hi))
    }

    /// See [`super::all_finite`].
    ///
    /// # Safety
    /// The CPU must support AVX2 (the dispatcher guarantees it).
    // tnb-lint: no_alloc
    // SAFETY: callers are gated on runtime AVX2 detection; pointer
    // arithmetic stays within `x`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn all_finite(x: &[f32]) -> bool {
        let lanes = x.len() / 8;
        let p = x.as_ptr();
        let exp = _mm256_set1_epi32(0x7F80_0000u32 as i32);
        for q in 0..lanes {
            let v = _mm256_loadu_si256(p.add(q * 8).cast());
            let masked = _mm256_and_si256(v, exp);
            let nonfinite = _mm256_cmpeq_epi32(masked, exp);
            if _mm256_movemask_epi8(nonfinite) != 0 {
                return false;
            }
        }
        super::all_finite_scalar(x, lanes * 8)
    }
}

// ---------------------------------------------------------------------
// NEON kernels (aarch64). NEON has de-interleaving loads (`vld2q`),
// so the complex kernels work on split re/im registers with plain
// `mul`/`add`/`sub` in the exact scalar operand order.
// ---------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::Complex32;
    use std::arch::aarch64::*;

    /// See [`super::cmul`].
    ///
    /// # Safety
    /// NEON must be available (baseline on aarch64).
    // tnb-lint: no_alloc
    // SAFETY: NEON is baseline on aarch64; pointer arithmetic stays
    // within the common prefix of the slices (Complex32 is `repr(C)`).
    #[target_feature(enable = "neon")]
    pub unsafe fn cmul(a: &[Complex32], b: &[Complex32], out: &mut [Complex32]) {
        let n = a.len().min(b.len()).min(out.len());
        let quads = n / 4;
        let ap = a.as_ptr().cast::<f32>();
        let bp = b.as_ptr().cast::<f32>();
        let op = out.as_mut_ptr().cast::<f32>();
        for q in 0..quads {
            let av = vld2q_f32(ap.add(q * 8)); // .0 = re lanes, .1 = im lanes
            let bv = vld2q_f32(bp.add(q * 8));
            vst2q_f32(op.add(q * 8), mul4(av, bv));
        }
        super::cmul_scalar(a, b, out, quads * 4);
    }

    /// See [`super::cmul_assign`].
    ///
    /// # Safety
    /// NEON must be available (baseline on aarch64).
    // tnb-lint: no_alloc
    // SAFETY: NEON is baseline on aarch64; pointer arithmetic stays
    // within the common prefix of the slices.
    #[target_feature(enable = "neon")]
    pub unsafe fn cmul_assign(buf: &mut [Complex32], rhs: &[Complex32]) {
        let n = buf.len().min(rhs.len());
        let quads = n / 4;
        let bp = buf.as_mut_ptr().cast::<f32>();
        let rp = rhs.as_ptr().cast::<f32>();
        for q in 0..quads {
            let av = vld2q_f32(bp.add(q * 8));
            let bv = vld2q_f32(rp.add(q * 8));
            vst2q_f32(bp.add(q * 8), mul4(av, bv));
        }
        super::cmul_assign_scalar(buf, rhs, quads * 4);
    }

    /// Four complex products in scalar operand order on split re/im
    /// registers (no FMA).
    ///
    /// # Safety
    /// NEON must be available (callers are `target_feature(neon)`).
    // tnb-lint: no_alloc
    // SAFETY: pure register arithmetic, no memory access.
    #[target_feature(enable = "neon")]
    unsafe fn mul4(a: float32x4x2_t, b: float32x4x2_t) -> float32x4x2_t {
        let re = vsubq_f32(vmulq_f32(a.0, b.0), vmulq_f32(a.1, b.1));
        let im = vaddq_f32(vmulq_f32(a.0, b.1), vmulq_f32(a.1, b.0));
        float32x4x2_t(re, im)
    }

    /// See [`super::butterfly`].
    ///
    /// # Safety
    /// NEON must be available (baseline on aarch64).
    // tnb-lint: no_alloc
    // SAFETY: NEON is baseline on aarch64; pointer arithmetic stays
    // within the common prefix of the slices.
    #[target_feature(enable = "neon")]
    pub unsafe fn butterfly(
        a: &mut [Complex32],
        b: &mut [Complex32],
        tw: &[Complex32],
        conj_tw: bool,
    ) {
        let half = a.len().min(b.len()).min(tw.len());
        let quads = half / 4;
        let ap = a.as_mut_ptr().cast::<f32>();
        let bp = b.as_mut_ptr().cast::<f32>();
        let tp = tw.as_ptr().cast::<f32>();
        for q in 0..quads {
            let mut wv = vld2q_f32(tp.add(q * 8));
            if conj_tw {
                // Exact sign flip of the imaginary lanes, like scalar `-im`.
                wv = float32x4x2_t(wv.0, vnegq_f32(wv.1));
            }
            let bv = vld2q_f32(bp.add(q * 8));
            let t = mul4(bv, wv);
            let av = vld2q_f32(ap.add(q * 8));
            let sum = float32x4x2_t(vaddq_f32(av.0, t.0), vaddq_f32(av.1, t.1));
            let diff = float32x4x2_t(vsubq_f32(av.0, t.0), vsubq_f32(av.1, t.1));
            vst2q_f32(ap.add(q * 8), sum);
            vst2q_f32(bp.add(q * 8), diff);
        }
        super::butterfly_scalar(a, b, tw, conj_tw, quads * 4);
    }

    /// See [`super::fold_mag`].
    ///
    /// # Safety
    /// NEON must be available (baseline on aarch64).
    // tnb-lint: no_alloc
    // SAFETY: NEON is baseline on aarch64; pointer arithmetic stays
    // within the common prefix of the slices.
    #[target_feature(enable = "neon")]
    pub unsafe fn fold_mag(front: &[Complex32], back: &[Complex32], out: &mut [f32]) {
        let n = front.len().min(back.len()).min(out.len());
        let quads = n / 4;
        let fp = front.as_ptr().cast::<f32>();
        let bp = back.as_ptr().cast::<f32>();
        let op = out.as_mut_ptr();
        for q in 0..quads {
            let f = vld2q_f32(fp.add(q * 8));
            let b = vld2q_f32(bp.add(q * 8));
            // re² + im² in scalar order (re² first, as in `norm_sqr`).
            let fns = vaddq_f32(vmulq_f32(f.0, f.0), vmulq_f32(f.1, f.1));
            let bns = vaddq_f32(vmulq_f32(b.0, b.0), vmulq_f32(b.1, b.1));
            let fab = vsqrtq_f32(fns); // correctly rounded, like .sqrt()
            let bab = vsqrtq_f32(bns);
            let m = vaddq_f32(fab, bab);
            vst1q_f32(op.add(q * 4), vmulq_f32(m, m));
        }
        super::fold_mag_scalar(front, back, out, quads * 4);
    }

    /// See [`super::min_max`]; returns total-order integer keys.
    ///
    /// # Safety
    /// NEON must be available (baseline on aarch64).
    // tnb-lint: no_alloc
    // SAFETY: NEON is baseline on aarch64; pointer arithmetic stays
    // within `x`.
    #[target_feature(enable = "neon")]
    pub unsafe fn min_max_keys(x: &[f32]) -> (i32, i32) {
        let lanes = x.len() / 4;
        let p = x.as_ptr();
        let mut lo_v = vdupq_n_s32(i32::MAX);
        let mut hi_v = vdupq_n_s32(i32::MIN);
        for q in 0..lanes {
            let v = vreinterpretq_s32_f32(vld1q_f32(p.add(q * 4)));
            let sign = vshrq_n_s32(v, 31);
            let flip = vreinterpretq_s32_u32(vshrq_n_u32(vreinterpretq_u32_s32(sign), 1));
            let k = veorq_s32(v, flip);
            lo_v = vminq_s32(lo_v, k);
            hi_v = vmaxq_s32(hi_v, k);
        }
        let lo = vminvq_s32(lo_v);
        let hi = vmaxvq_s32(hi_v);
        super::min_max_keys_scalar(x, lanes * 4, (lo, hi))
    }

    /// See [`super::all_finite`].
    ///
    /// # Safety
    /// NEON must be available (baseline on aarch64).
    // tnb-lint: no_alloc
    // SAFETY: NEON is baseline on aarch64; pointer arithmetic stays
    // within `x`.
    #[target_feature(enable = "neon")]
    pub unsafe fn all_finite(x: &[f32]) -> bool {
        let lanes = x.len() / 4;
        let p = x.as_ptr();
        let exp = vdupq_n_u32(0x7F80_0000);
        for q in 0..lanes {
            let v = vreinterpretq_u32_f32(vld1q_f32(p.add(q * 4)));
            let nonfinite = vceqq_u32(vandq_u32(v, exp), exp);
            if vmaxvq_u32(nonfinite) != 0 {
                return false;
            }
        }
        super::all_finite_scalar(x, lanes * 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize, seed: u64) -> Vec<Complex32> {
        let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) as f32 - 0.5
        };
        (0..n).map(|_| Complex32::new(next(), next())).collect()
    }

    #[test]
    fn scalar_backend_is_always_supported_and_forcible() {
        assert!(supported(Backend::Scalar));
        assert!(matches!(
            active(),
            Backend::Scalar | Backend::Avx2 | Backend::Neon
        ));
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Avx2.name(), "avx2");
        assert_eq!(Backend::Neon.name(), "neon");
    }

    #[test]
    fn unsupported_backend_cannot_be_forced() {
        #[cfg(not(target_arch = "aarch64"))]
        assert!(!force(Backend::Neon));
        #[cfg(not(target_arch = "x86_64"))]
        assert!(!force(Backend::Avx2));
    }

    #[test]
    fn key_transform_is_an_involution_and_monotone() {
        let cases = [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            f32::MIN_POSITIVE,
            f32::MAX,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            -f32::NAN,
            1.5e-42, // subnormal
        ];
        for &v in &cases {
            let k = key_from_f32(v);
            assert_eq!(f32_from_key(k).to_bits(), v.to_bits(), "{v}");
        }
        // Monotone over an ordered ladder of representative values.
        let ladder = [
            f32::NEG_INFINITY,
            -1.0e30,
            -1.0,
            -f32::MIN_POSITIVE,
            -0.0,
            0.0,
            f32::MIN_POSITIVE,
            1.0,
            1.0e30,
            f32::INFINITY,
        ];
        for w in ladder.windows(2) {
            assert!(key_from_f32(w[0]) < key_from_f32(w[1]), "{w:?}");
        }
    }

    #[test]
    fn scalar_cmul_matches_operator() {
        let a = signal(37, 1);
        let b = signal(37, 2);
        let mut out = vec![Complex32::ZERO; 37];
        cmul_scalar(&a, &b, &mut out, 0);
        for i in 0..37 {
            assert_eq!(out[i], a[i] * b[i]);
        }
        let mut buf = a.clone();
        cmul_assign_scalar(&mut buf, &b, 0);
        assert_eq!(buf, out);
    }

    #[test]
    fn scalar_min_max_matches_total_order() {
        let xs = [3.0f32, -7.5, 0.25, 42.0, -0.0, 11.0];
        let (lo, hi) = min_max(&xs);
        assert_eq!(lo, -7.5);
        assert_eq!(hi, 42.0);
        assert_eq!(min_max(&[]), (f32::INFINITY, f32::NEG_INFINITY));
        // NaN sorts above +Inf in the total order; the result is still
        // deterministic.
        let (_, hi) = min_max(&[1.0, f32::NAN]);
        assert!(hi.is_nan());
    }

    #[test]
    fn scalar_all_finite_matches_is_finite() {
        assert!(all_finite(&[0.0, -1.0, 3.0e38]));
        assert!(!all_finite(&[0.0, f32::NAN]));
        assert!(!all_finite(&[f32::INFINITY]));
        assert!(!all_finite(&[f32::NEG_INFINITY, 1.0]));
        assert!(all_finite(&[]));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_kernels_match_scalar_bits() {
        if !supported(Backend::Avx2) {
            return; // nothing to compare on this host
        }
        for n in [0usize, 1, 3, 4, 7, 8, 64, 129] {
            let a = signal(n, 10 + n as u64);
            let b = signal(n, 20 + n as u64);
            let mut want = vec![Complex32::ZERO; n];
            let mut got = vec![Complex32::ZERO; n];
            cmul_scalar(&a, &b, &mut want, 0);
            // SAFETY: guarded by the `supported(Backend::Avx2)` check above.
            unsafe { avx2::cmul(&a, &b, &mut got) };
            assert_eq!(want, got, "cmul n={n}");

            let mut want_f = vec![0.0f32; n];
            let mut got_f = vec![0.0f32; n];
            fold_mag_scalar(&a, &b, &mut want_f, 0);
            // SAFETY: guarded by the `supported(Backend::Avx2)` check above.
            unsafe { avx2::fold_mag(&a, &b, &mut got_f) };
            for i in 0..n {
                assert_eq!(want_f[i].to_bits(), got_f[i].to_bits(), "fold n={n} i={i}");
            }

            let xs: Vec<f32> = a.iter().flat_map(|c| [c.re, c.im]).collect();
            // SAFETY: guarded by the `supported(Backend::Avx2)` check above.
            let got_mm = unsafe { avx2::min_max_keys(&xs) };
            let want_mm = min_max_keys_scalar(&xs, 0, (i32::MAX, i32::MIN));
            assert_eq!(want_mm, got_mm, "min_max n={n}");
            // SAFETY: guarded by the `supported(Backend::Avx2)` check above.
            let got_fin = unsafe { avx2::all_finite(&xs) };
            assert_eq!(all_finite_scalar(&xs, 0), got_fin, "all_finite n={n}");

            for conj_tw in [false, true] {
                let mut wa = a.clone();
                let mut wb = b.clone();
                let tw = signal(n, 30 + n as u64);
                let mut ga = a.clone();
                let mut gb = b.clone();
                butterfly_scalar(&mut wa, &mut wb, &tw, conj_tw, 0);
                // SAFETY: guarded by the `supported(Backend::Avx2)` check.
                unsafe { avx2::butterfly(&mut ga, &mut gb, &tw, conj_tw) };
                assert_eq!(wa, ga, "butterfly a n={n} conj={conj_tw}");
                assert_eq!(wb, gb, "butterfly b n={n} conj={conj_tw}");
            }
        }
    }

    #[test]
    fn kernels_trim_to_common_prefix() {
        let a = signal(8, 3);
        let b = signal(5, 4);
        let mut out = vec![Complex32::ZERO; 10];
        cmul(&a, &b, &mut out);
        for i in 0..5 {
            assert_eq!(out[i], a[i] * b[i]);
        }
        for o in out.iter().skip(5) {
            assert_eq!(*o, Complex32::ZERO);
        }
    }
}
