//! Local-maxima detection: a port of the MATLAB `peakfinder` routine
//! (N. Yoder, MATLAB Central #25500), which the paper uses as its peak
//! detector (reference \[29\]).
//!
//! The algorithm walks the alternating local extrema of the input and keeps
//! a maximum only if it stands out from the neighbouring minima by more than
//! a *selectivity* threshold `sel`. This suppresses spectral ripple around a
//! strong FFT peak while keeping genuinely separate peaks from different
//! LoRa transmitters.
//!
//! Two extensions beyond the MATLAB original, both needed by TnB:
//!
//! - **Circular mode**: LoRa signal vectors are FFT-bin vectors, so a peak
//!   can straddle the bin-0 boundary. In circular mode the endpoints are
//!   treated as neighbours.
//! - A hard `max_peaks` cap (Thrive bounds the number of peaks per symbol
//!   by `2M`), keeping the tallest peaks.

/// A detected peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Index of the peak sample in the input vector.
    pub index: usize,
    /// Height of the peak sample.
    pub height: f32,
}

/// Configuration for [`find_peaks`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PeakFinderConfig {
    /// Selectivity: a maximum must exceed the surrounding minima by more
    /// than this to count. `None` uses the MATLAB default
    /// `(max(x) - min(x)) / 4`.
    pub sel: Option<f32>,
    /// Absolute height threshold; peaks below it are dropped. `None`
    /// disables the threshold.
    pub threshold: Option<f32>,
    /// Treat the input as circular (FFT-bin vectors). When set, endpoints
    /// wrap instead of being boundary extrema.
    pub circular: bool,
    /// Whether the first/last sample may be reported as peaks
    /// (ignored in circular mode, where there is no boundary).
    pub include_endpoints: bool,
    /// Keep at most this many peaks (the tallest ones). `None` keeps all.
    pub max_peaks: Option<usize>,
}

/// Finds local maxima of `x` per [`PeakFinderConfig`].
///
/// Returns peaks sorted by index. Inputs shorter than 3 samples yield no
/// peaks (matching the MATLAB routine, which requires a neighbourhood).
pub fn find_peaks(x: &[f32], cfg: &PeakFinderConfig) -> Vec<Peak> {
    if x.len() < 3 {
        return Vec::new();
    }

    // NaN/Inf bins (hostile or broken front-end input) must neither win
    // peak selection nor poison the selectivity estimate. The all-finite
    // fast path leaves clean traces bit-identical; otherwise non-finite
    // bins are floored to the finite minimum, so they can never stand
    // out from their neighbourhood.
    if !crate::simd::all_finite(x) {
        let lo = x
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(f32::INFINITY, f32::min);
        if !lo.is_finite() {
            return Vec::new(); // nothing finite: no meaningful peaks
        }
        let sanitized: Vec<f32> = x
            .iter()
            .map(|&v| if v.is_finite() { v } else { lo })
            .collect();
        let mut peaks = find_peaks(&sanitized, cfg);
        // A sanitized bin can only be reported if the whole vector is
        // flat; drop anything whose reported height is the floor stand-in
        // for a bad bin.
        peaks.retain(|p| x[p.index].is_finite());
        return peaks;
    }

    // Total-order min/max (SIMD-dispatched): on the all-finite input
    // reaching this point it agrees with the naive `f32::min`/`max` fold
    // up to the sign of a ±0 extremum, which cancels in `hi - lo`.
    let (lo, hi) = crate::simd::min_max(x);
    let sel = cfg.sel.unwrap_or((hi - lo) / 4.0);

    let peaks = if cfg.circular {
        find_peaks_circular(x, sel)
    } else {
        find_peaks_linear(x, sel, cfg.include_endpoints)
    };

    let mut peaks: Vec<Peak> = match cfg.threshold {
        Some(t) => peaks.into_iter().filter(|p| p.height >= t).collect(),
        None => peaks,
    };

    if let Some(cap) = cfg.max_peaks {
        if peaks.len() > cap {
            // Keep the tallest `cap`, then restore index order.
            peaks.sort_by(|a, b| b.height.total_cmp(&a.height));
            peaks.truncate(cap);
            peaks.sort_by_key(|p| p.index);
        }
    }
    peaks
}

/// Core alternating-extrema scan with selectivity, on a linear signal.
///
/// This mirrors the structure of the MATLAB routine: maintain the lowest
/// value seen since the last confirmed peak (`left_min`); a candidate
/// maximum becomes a peak once it exceeds `left_min + sel` *and* the signal
/// subsequently drops by more than `sel` below it (or the signal ends).
fn find_peaks_linear(x: &[f32], sel: f32, include_endpoints: bool) -> Vec<Peak> {
    let n = x.len();
    let mut peaks = Vec::new();

    let mut left_min = x[0];
    let mut candidate: Option<Peak> = None;

    // Optionally allow the first sample to be a candidate.
    if include_endpoints && x[0] > x[1] {
        candidate = Some(Peak {
            index: 0,
            height: x[0],
        });
    }

    for i in 1..n {
        let v = x[i];
        match candidate {
            Some(c) => {
                if v > c.height {
                    // Still climbing: move the candidate up.
                    candidate = Some(Peak {
                        index: i,
                        height: v,
                    });
                } else if v < c.height - sel {
                    // Dropped far enough below the candidate: confirm it.
                    peaks.push(c);
                    candidate = None;
                    left_min = v;
                }
            }
            None => {
                left_min = left_min.min(v);
                // A local rise of more than `sel` above the running minimum
                // starts a new candidate.
                if v > left_min + sel {
                    let is_local_max = i + 1 >= n || x[i + 1] <= v;
                    let _ = is_local_max; // candidacy does not require it; the climb loop handles plateaus
                    candidate = Some(Peak {
                        index: i,
                        height: v,
                    });
                }
            }
        }
    }

    if let Some(c) = candidate {
        // Signal ended while a candidate was live. MATLAB keeps it if
        // endpoints are allowed or if it is an interior sample.
        if include_endpoints || c.index + 1 < n {
            peaks.push(c);
        }
    }

    peaks
}

/// Circular variant: rotate the signal so it starts at its global minimum,
/// run the linear scan (the global minimum can never be inside a peak), and
/// map indices back.
fn find_peaks_circular(x: &[f32], sel: f32) -> Vec<Peak> {
    let n = x.len();
    let min_idx = x
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);

    let rotated: Vec<f32> = (0..n).map(|i| x[(i + min_idx) % n]).collect();
    // Endpoints are enabled because the rotated signal starts at the global
    // minimum: a candidate still live at the end wraps down to that minimum,
    // which confirms it (it already cleared `min + sel` to become a
    // candidate).
    let mut peaks = find_peaks_linear(&rotated, sel, true);
    for p in &mut peaks {
        p.index = (p.index + min_idx) % n;
    }
    peaks.sort_by_key(|p| p.index);
    peaks
}

/// Quadratic (parabolic) interpolation of a peak's fractional position from
/// its two neighbours. Returns the fractional index offset in `[-0.5, 0.5]`
/// and the interpolated height.
///
/// Used by analyses that need sub-bin peak positions; Thrive itself works on
/// integer bins.
pub fn refine_peak(x: &[f32], index: usize) -> (f32, f32) {
    let n = x.len();
    if n < 3 {
        return (0.0, x.get(index).copied().unwrap_or(0.0));
    }
    let l = x[(index + n - 1) % n];
    let c = x[index];
    let r = x[(index + 1) % n];
    let denom = l - 2.0 * c + r;
    if denom.abs() < 1e-20 {
        return (0.0, c);
    }
    let delta = 0.5 * (l - r) / denom;
    let delta = delta.clamp(-0.5, 0.5);
    let height = c - 0.25 * (l - r) * delta;
    (delta, height)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PeakFinderConfig {
        PeakFinderConfig::default()
    }

    #[test]
    fn single_triangle_peak() {
        let x = [0.0, 1.0, 4.0, 1.0, 0.0];
        let p = find_peaks(&x, &cfg());
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 2);
        assert_eq!(p[0].height, 4.0);
    }

    #[test]
    fn two_separated_peaks() {
        let x = [0.0, 5.0, 0.0, 0.0, 7.0, 0.0, 0.0];
        let p = find_peaks(&x, &cfg());
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].index, 1);
        assert_eq!(p[1].index, 4);
    }

    #[test]
    fn ripple_below_selectivity_is_ignored() {
        // Main peak 10 with ripple of ±0.5 around it; default sel = 2.5.
        let x = [0.0, 0.5, 0.2, 0.6, 10.0, 0.4, 0.7, 0.3, 0.0];
        let p = find_peaks(&x, &cfg());
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 4);
    }

    #[test]
    fn explicit_selectivity_splits_close_peaks() {
        let x = [0.0, 4.0, 2.0, 4.5, 0.0];
        // Default sel = 4.5/4 ≈ 1.13 < dip of 2.0..2.5, so both survive.
        let p = find_peaks(&x, &cfg());
        assert_eq!(p.len(), 2);
        // With sel = 3, the dip to 2.0 is not deep enough after peak 1
        // (4.0 - 2.0 < 3), so only the taller peak remains.
        let p = find_peaks(
            &x,
            &PeakFinderConfig {
                sel: Some(3.0),
                ..cfg()
            },
        );
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 3);
    }

    #[test]
    fn threshold_drops_small_peaks() {
        let x = [0.0, 2.0, 0.0, 9.0, 0.0];
        let p = find_peaks(
            &x,
            &PeakFinderConfig {
                threshold: Some(5.0),
                sel: Some(1.0),
                ..cfg()
            },
        );
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 3);
    }

    #[test]
    fn max_peaks_keeps_tallest() {
        let x = [0.0, 3.0, 0.0, 9.0, 0.0, 6.0, 0.0];
        let p = find_peaks(
            &x,
            &PeakFinderConfig {
                sel: Some(1.0),
                max_peaks: Some(2),
                ..cfg()
            },
        );
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].index, 3);
        assert_eq!(p[1].index, 5);
    }

    #[test]
    fn circular_peak_at_wraparound() {
        // Peak centred on bin 0 of a circular vector.
        let x = [10.0, 4.0, 0.0, 0.0, 0.0, 0.0, 0.0, 4.0];
        let p = find_peaks(
            &x,
            &PeakFinderConfig {
                circular: true,
                sel: Some(2.0),
                ..cfg()
            },
        );
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 0);
    }

    #[test]
    fn circular_two_peaks() {
        let x = [9.0, 1.0, 0.0, 6.0, 0.5, 0.0, 0.0, 2.0];
        let p = find_peaks(
            &x,
            &PeakFinderConfig {
                circular: true,
                sel: Some(2.0),
                ..cfg()
            },
        );
        let idx: Vec<usize> = p.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![0, 3]);
    }

    #[test]
    fn circular_peak_at_last_bin() {
        // Peak in the final bin, valley wraps through bin 0.
        let x = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 3.0, 10.0];
        let p = find_peaks(
            &x,
            &PeakFinderConfig {
                circular: true,
                sel: Some(2.0),
                ..cfg()
            },
        );
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 7);
    }

    #[test]
    fn flat_signal_has_no_peaks() {
        let x = [1.0; 16];
        assert!(find_peaks(&x, &cfg()).is_empty());
        let x = [0.0, 0.0];
        assert!(find_peaks(&x, &cfg()).is_empty());
    }

    #[test]
    fn monotone_signal_has_no_interior_peaks() {
        let x: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let p = find_peaks(&x, &cfg());
        assert!(p.is_empty(), "{p:?}");
        // With endpoints allowed, the final sample is reported.
        let p = find_peaks(
            &x,
            &PeakFinderConfig {
                include_endpoints: true,
                ..cfg()
            },
        );
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 9);
    }

    #[test]
    fn plateau_reports_first_top_sample() {
        let x = [0.0, 5.0, 5.0, 5.0, 0.0];
        let p = find_peaks(&x, &cfg());
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 1);
    }

    #[test]
    fn nan_and_inf_bins_never_win() {
        // A NaN next to a genuine peak, +Inf in the flank, -Inf in the
        // valley: only the real peaks may be reported.
        let x = [
            0.0,
            5.0,
            0.0,
            f32::NAN,
            0.0,
            f32::INFINITY,
            0.0,
            7.0,
            f32::NEG_INFINITY,
            0.0,
        ];
        for circular in [false, true] {
            let p = find_peaks(
                &x,
                &PeakFinderConfig {
                    sel: Some(1.0),
                    circular,
                    ..cfg()
                },
            );
            assert!(!p.is_empty(), "circular={circular}");
            for pk in &p {
                assert!(pk.height.is_finite(), "{pk:?}");
                assert!(x[pk.index].is_finite(), "{pk:?}");
            }
            assert!(p.iter().any(|pk| pk.index == 1));
            assert!(p.iter().any(|pk| pk.index == 7));
        }
    }

    #[test]
    fn all_nonfinite_input_yields_no_peaks() {
        let x = [f32::NAN; 8];
        assert!(find_peaks(&x, &cfg()).is_empty());
        let x = [f32::INFINITY; 8];
        assert!(find_peaks(&x, &cfg()).is_empty());
    }

    #[test]
    fn finite_input_unaffected_by_sanitizer() {
        // The sanitizer's fast path: results on clean input are the same
        // object-for-object as before the hardening (spot check).
        let x = [0.0, 3.0, 0.0, 9.0, 0.0, 6.0, 0.0];
        let p = find_peaks(
            &x,
            &PeakFinderConfig {
                sel: Some(1.0),
                ..cfg()
            },
        );
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn refine_peak_recovers_fractional_position() {
        // Sample a parabola with apex at 4.3.
        let apex = 4.3_f32;
        let x: Vec<f32> = (0..9).map(|i| 10.0 - (i as f32 - apex).powi(2)).collect();
        let (d, h) = refine_peak(&x, 4);
        assert!((d - 0.3).abs() < 1e-4, "delta {d}");
        assert!((h - 10.0).abs() < 1e-3, "height {h}");
    }

    #[test]
    fn refine_peak_wraps_circularly() {
        let x = [10.0, 6.0, 0.0, 0.0, 0.0, 0.0, 0.0, 6.0];
        let (d, _) = refine_peak(&x, 0);
        assert!(d.abs() < 1e-6); // symmetric neighbours -> centred
    }
}
