//! Moving-window smoothers standing in for MATLAB `smoothdata`.
//!
//! Thrive fits a curve to the peak-height history of each packet to predict
//! the next peak's height (paper §5.3.3, Fig. 6). The paper uses MATLAB's
//! `smoothdata`, whose default method is a centred moving mean; we provide
//! that plus a Gaussian-weighted variant, and the helpers Thrive needs:
//! evaluating the fitted curve at a given index and the median absolute
//! deviation between data and fit.

/// Centred moving mean with window length `window` (clamped at the edges,
/// like MATLAB's `movmean` with default endpoint handling).
///
/// `window == 0` is treated as 1 (identity). Returns a vector the same
/// length as `data`.
pub fn moving_mean(data: &[f32], window: usize) -> Vec<f32> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    let w = window.max(1);
    let half_left = (w - 1) / 2;
    let half_right = w / 2;
    let mut out = Vec::with_capacity(n);
    // Prefix sums in f64 so long histories do not lose precision.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0f64);
    let mut running = 0.0f64;
    for &v in data {
        running += v as f64;
        prefix.push(running);
    }
    for i in 0..n {
        let lo = i.saturating_sub(half_left);
        let hi = (i + half_right + 1).min(n);
        let sum = prefix[hi] - prefix[lo];
        out.push((sum / (hi - lo) as f64) as f32);
    }
    out
}

/// Centred moving median with window length `window` (edge-clamped).
pub fn moving_median(data: &[f32], window: usize) -> Vec<f32> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    let w = window.max(1);
    let half_left = (w - 1) / 2;
    let half_right = w / 2;
    let mut out = Vec::with_capacity(n);
    let mut scratch = Vec::with_capacity(w);
    for i in 0..n {
        let lo = i.saturating_sub(half_left);
        let hi = (i + half_right + 1).min(n);
        scratch.clear();
        scratch.extend_from_slice(&data[lo..hi]);
        out.push(crate::stats::median_mut(&mut scratch));
    }
    out
}

/// Gaussian-weighted smoothing (σ = window/5, matching `smoothdata`'s
/// `'gaussian'` method), edge-renormalised.
pub fn gaussian_smooth(data: &[f32], window: usize) -> Vec<f32> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    let w = window.max(1);
    let sigma = w as f64 / 5.0;
    let half = (w / 2) as isize;
    let weights: Vec<f64> = (-half..=half)
        .map(|k| (-0.5 * (k as f64 / sigma.max(1e-9)).powi(2)).exp())
        .collect();
    let mut out = Vec::with_capacity(n);
    for i in 0..n as isize {
        let mut acc = 0.0f64;
        let mut wsum = 0.0f64;
        for (j, &wt) in weights.iter().enumerate() {
            let idx = i + (j as isize - half);
            if idx >= 0 && (idx as usize) < n {
                acc += wt * data[idx as usize] as f64;
                wsum += wt;
            }
        }
        out.push((acc / wsum) as f32);
    }
    out
}

/// The fitted-history model Thrive uses: a smoothed version of the observed
/// peak heights plus the spread of the data around the fit.
///
/// - `fitted`: smoothed curve (same length as the input history),
/// - `deviation`: median of `|data[i] - fitted[i]|` (paper: "the median of
///   the differences between the actual and fitted data").
#[derive(Debug, Clone)]
pub struct FittedHistory {
    /// Smoothed curve, one value per observed sample.
    pub fitted: Vec<f32>,
    /// Median absolute deviation of the data from the curve.
    pub deviation: f32,
}

/// Fits the peak-height history with a moving mean of length `window`
/// (Thrive uses this via `smoothdata` \[8\]).
pub fn fit_history(data: &[f32], window: usize) -> FittedHistory {
    let fitted = moving_mean(data, window);
    let mut devs: Vec<f32> = data
        .iter()
        .zip(&fitted)
        .map(|(&d, &f)| (d - f).abs())
        .collect();
    let deviation = if devs.is_empty() {
        0.0
    } else {
        crate::stats::median_mut(&mut devs)
    };
    FittedHistory { fitted, deviation }
}

impl FittedHistory {
    /// Value of the fitted curve at `index`, clamped to the fitted range so
    /// "the value of the fitted curve at the previous symbol" is defined
    /// even at the edges of the history.
    pub fn value_at(&self, index: usize) -> f32 {
        if self.fitted.is_empty() {
            return 0.0;
        }
        let i = index.min(self.fitted.len() - 1);
        self.fitted[i]
    }

    /// The last fitted value (the model's prediction for the next sample).
    pub fn last(&self) -> f32 {
        self.fitted.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_mean_window_one_is_identity() {
        let d = [1.0, 5.0, 2.0, 8.0];
        assert_eq!(moving_mean(&d, 1), d.to_vec());
        assert_eq!(moving_mean(&d, 0), d.to_vec());
    }

    #[test]
    fn moving_mean_constant_preserved() {
        let d = [3.0; 10];
        for w in [1, 3, 5, 11] {
            for v in moving_mean(&d, w) {
                assert!((v - 3.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn moving_mean_interior_window3() {
        let d = [0.0, 3.0, 6.0, 9.0];
        let m = moving_mean(&d, 3);
        assert!((m[1] - 3.0).abs() < 1e-6);
        assert!((m[2] - 6.0).abs() < 1e-6);
        // Edge-clamped windows:
        assert!((m[0] - 1.5).abs() < 1e-6);
        assert!((m[3] - 7.5).abs() < 1e-6);
    }

    #[test]
    fn moving_mean_empty() {
        assert!(moving_mean(&[], 3).is_empty());
    }

    #[test]
    fn moving_median_rejects_outlier() {
        let d = [1.0, 1.0, 100.0, 1.0, 1.0];
        let m = moving_median(&d, 3);
        assert_eq!(m[2], 1.0);
    }

    #[test]
    fn gaussian_smooth_constant_preserved() {
        let d = [2.0; 8];
        for v in gaussian_smooth(&d, 5) {
            assert!((v - 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gaussian_smooth_reduces_variance() {
        let d: Vec<f32> = (0..50)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let s = gaussian_smooth(&d, 7);
        let var_in: f32 = d.iter().map(|v| v * v).sum::<f32>() / d.len() as f32;
        let var_out: f32 = s.iter().map(|v| v * v).sum::<f32>() / s.len() as f32;
        assert!(var_out < var_in * 0.5);
    }

    #[test]
    fn fit_history_tracks_trend() {
        // Linear ramp with alternating noise: fit should stay close to ramp.
        let d: Vec<f32> = (0..40)
            .map(|i| i as f32 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let f = fit_history(&d, 5);
        for i in 5..35 {
            assert!((f.fitted[i] - i as f32).abs() < 0.6, "i={i}");
        }
        assert!(f.deviation <= 0.55, "deviation {}", f.deviation);
    }

    #[test]
    fn fit_history_value_at_clamps() {
        let f = fit_history(&[1.0, 2.0, 3.0], 1);
        assert_eq!(f.value_at(0), 1.0);
        assert_eq!(f.value_at(99), 3.0);
        assert_eq!(f.last(), 3.0);
    }

    #[test]
    fn fit_history_empty_is_zero() {
        let f = fit_history(&[], 5);
        assert_eq!(f.deviation, 0.0);
        assert_eq!(f.value_at(3), 0.0);
        assert_eq!(f.last(), 0.0);
    }
}
