//! A minimal complex number type over `f32`.
//!
//! LoRa baseband samples are complex I/Q pairs. The paper's traces store
//! them as 16-bit integers, so `f32` loses nothing; it also halves memory
//! traffic versus `f64`, which matters because a 1 Msps trace holds millions
//! of samples. Phase *generation* (chirp synthesis) is done in `f64` by the
//! PHY crate before narrowing, so precision-sensitive accumulation never
//! happens in `f32`.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f32` real and imaginary parts.
///
/// `repr(C)` guarantees the `(re, im)` interleaved layout the SIMD kernels
/// in [`crate::simd`] rely on when reinterpreting slices as packed `f32`s.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex32 {
    /// Real (in-phase) part.
    pub re: f32,
    /// Imaginary (quadrature) part.
    pub im: f32,
}

impl Complex32 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex32 = Complex32 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex32 = Complex32 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Complex32 { re, im }
    }

    /// Creates the unit-magnitude complex number `e^{i·phase}`.
    ///
    /// `phase` is accepted in `f64` because chirp phases are accumulated in
    /// double precision; only the final sinusoid is narrowed to `f32`.
    #[inline]
    pub fn from_phase(phase: f64) -> Self {
        let (s, c) = phase.sin_cos();
        Complex32 {
            re: c as f32,
            im: s as f32,
        }
    }

    /// Creates a complex number from polar coordinates.
    #[inline]
    pub fn from_polar(magnitude: f32, phase: f32) -> Self {
        let (s, c) = phase.sin_cos();
        Complex32 {
            re: magnitude * c,
            im: magnitude * s,
        }
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex32 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²` (cheaper than [`Self::abs`]; use it for
    /// comparisons and energies).
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `√(re² + im²)`.
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Multiplies by the conjugate of `rhs`; equivalent to `self * rhs.conj()`
    /// but spelled out because it is the hot operation in de-chirping.
    #[inline]
    pub fn mul_conj(self, rhs: Self) -> Self {
        Complex32 {
            re: self.re * rhs.re + self.im * rhs.im,
            im: self.im * rhs.re - self.re * rhs.im,
        }
    }

    /// Scales both components by a real factor.
    #[inline]
    pub fn scale(self, k: f32) -> Self {
        Complex32 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex32 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex32 {
    type Output = Complex32;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f32> for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, k: f32) -> Self {
        self.scale(k)
    }
}

impl Div<f32> for Complex32 {
    type Output = Complex32;
    #[inline]
    fn div(self, k: f32) -> Self {
        self.scale(1.0 / k)
    }
}

impl Neg for Complex32 {
    type Output = Complex32;
    #[inline]
    fn neg(self) -> Self {
        Complex32::new(-self.re, -self.im)
    }
}

impl std::fmt::Display for Complex32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex32, b: Complex32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex32::new(1.5, -2.0);
        let b = Complex32::new(-0.25, 4.0);
        assert!(close(a + b - b, a));
    }

    #[test]
    fn mul_matches_expansion() {
        let a = Complex32::new(3.0, 4.0);
        let b = Complex32::new(-1.0, 2.0);
        // (3+4i)(-1+2i) = -3 + 6i - 4i + 8i² = -11 + 2i
        assert!(close(a * b, Complex32::new(-11.0, 2.0)));
    }

    #[test]
    fn conj_negates_imaginary() {
        let a = Complex32::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex32::new(3.0, -4.0));
    }

    #[test]
    fn mul_conj_equals_mul_by_conj() {
        let a = Complex32::new(0.3, -0.7);
        let b = Complex32::new(1.1, 0.9);
        assert!(close(a.mul_conj(b), a * b.conj()));
    }

    #[test]
    fn abs_of_3_4_is_5() {
        assert!((Complex32::new(3.0, 4.0).abs() - 5.0).abs() < 1e-6);
        assert!((Complex32::new(3.0, 4.0).norm_sqr() - 25.0).abs() < 1e-6);
    }

    #[test]
    fn from_phase_is_unit_magnitude() {
        for k in 0..16 {
            let z = Complex32::from_phase(k as f64 * 0.5);
            assert!((z.abs() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn from_polar_roundtrip() {
        let z = Complex32::from_polar(2.0, 1.0);
        assert!((z.abs() - 2.0).abs() < 1e-5);
        assert!((z.arg() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn arg_quadrants() {
        assert!((Complex32::new(1.0, 0.0).arg()).abs() < 1e-6);
        assert!((Complex32::new(0.0, 1.0).arg() - std::f32::consts::FRAC_PI_2).abs() < 1e-6);
        assert!((Complex32::new(-1.0, 0.0).arg() - std::f32::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex32::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex32::new(1.0, 2.0).to_string(), "1+2i");
    }
}
