//! DSP substrate for the TnB LoRa collision decoder.
//!
//! This crate provides the numeric building blocks that the rest of the
//! workspace is built on. Everything is implemented from scratch so the
//! workspace has no external DSP dependencies:
//!
//! - [`Complex32`]: a minimal complex number type over `f32`, the sample
//!   format of the synthetic traces (the paper's USRP traces store 16-bit
//!   integer I/Q, which `f32` covers exactly).
//! - [`fft`]: an iterative radix-2 Cooley–Tukey FFT with a reusable
//!   [`fft::FftPlan`]. All transform sizes in LoRa processing are powers of
//!   two (`2^SF · OSF`), so radix-2 is sufficient and simple.
//! - [`peakfinder`]: a port of the MATLAB `peakfinder` routine the paper uses
//!   for peak detection (reference \[29\] in the paper).
//! - [`smooth`]: moving-window smoothers standing in for MATLAB
//!   `smoothdata`, used by Thrive's peak-height history model.
//! - [`stats`]: median / percentile / CDF helpers used throughout the
//!   evaluation harness.
//! - [`scratch`]: the per-thread [`DspScratch`] workspace (cached FFT
//!   plans plus reusable de-chirp/spectrum buffers) that keeps the
//!   steady-state decode loop free of per-symbol allocations.
//! - [`simd`]: runtime-dispatched SIMD kernels (AVX2 / NEON / scalar) for
//!   the hot inner loops, bit-identical to the scalar reference.
//! - [`channelizer`]: a polyphase DFT filterbank splitting one wideband
//!   IQ stream into the per-channel streams the receivers consume.
//!
//! Design follows the workspace's networking-code guidelines: simple,
//! event-free, allocation-conscious synchronous code with no macro or type
//! tricks.

pub mod channelizer;
pub mod complex;
pub mod fft;
pub mod peakfinder;
pub mod scratch;
pub mod simd;
pub mod smooth;
pub mod stats;

pub use channelizer::{Channelizer, ChannelizerConfig};
pub use complex::Complex32;
pub use fft::FftPlan;
pub use peakfinder::{find_peaks, Peak, PeakFinderConfig};
pub use scratch::{DspScratch, FftPlanCache};
