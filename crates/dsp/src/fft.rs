//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! Every transform the TnB pipeline performs has a power-of-two length
//! (`2^SF` at base rate or `2^SF · OSF` oversampled, with SF ∈ 6..=12 and
//! OSF a power of two), so a radix-2 kernel covers all of them.
//!
//! [`FftPlan`] precomputes twiddle factors and the bit-reversal permutation
//! once per size; the de-chirp loop then reuses the plan for every symbol.
//! Transforms are performed in place to avoid per-symbol allocations.

use crate::complex::Complex32;

/// A reusable FFT plan for a fixed power-of-two size.
///
/// Create one with [`FftPlan::new`] and call [`FftPlan::forward`] /
/// [`FftPlan::inverse`] on buffers of exactly that size.
#[derive(Debug, Clone)]
pub struct FftPlan {
    size: usize,
    /// Twiddle factors `e^{-2πik/N}` (forward direction) flattened per
    /// stage (`len = 2, 4, …, N`): for each stage the `len/2` factors
    /// `e^{-2πi·(k·N/len)/N}`, `k in 0..len/2`, in order. The butterfly
    /// kernel walks a contiguous slice instead of a strided gather; the
    /// bits are identical to the classic half-size table. N−1 entries.
    stage_twiddles: Vec<Complex32>,
    /// Bit-reversal permutation: `rev[i]` is `i` with `log2(N)` bits reversed.
    rev: Vec<u32>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `size`.
    ///
    /// # Panics
    /// Panics if `size` is zero or not a power of two.
    pub fn new(size: usize) -> Self {
        // tnb-lint: allow(TNB-PANIC02) -- documented `# Panics` plan-construction precondition; FFT sizes are configuration constants, not decode input
        assert!(
            size.is_power_of_two() && size > 0,
            "FFT size must be a nonzero power of two, got {size}"
        );
        let bits = size.trailing_zeros();
        // Twiddles are generated from f64 phases so large sizes keep full
        // f32 accuracy.
        let twiddles: Vec<Complex32> = (0..size / 2)
            .map(|k| Complex32::from_phase(-2.0 * std::f64::consts::PI * k as f64 / size as f64))
            .collect();
        let mut stage_twiddles = Vec::with_capacity(size.saturating_sub(1));
        let mut len = 2;
        while len <= size {
            let stride = size / len;
            for k in 0..len / 2 {
                stage_twiddles.push(twiddles[k * stride]);
            }
            len <<= 1;
        }
        let rev = (0..size as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .collect::<Vec<_>>();
        // For size == 1 the shift above would be 31 and rev[0] must be 0,
        // which it is; no special case needed beyond bits.max(1).
        FftPlan {
            size,
            stage_twiddles,
            rev,
        }
    }

    /// The transform length this plan was built for.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// In-place forward DFT: `X[k] = Σ_n x[n] e^{-2πikn/N}` (no scaling).
    ///
    /// # Panics
    /// Panics if `buf.len() != self.size()`.
    pub fn forward(&self, buf: &mut [Complex32]) {
        assert_eq!(buf.len(), self.size, "buffer length must match plan size"); // tnb-lint: allow(TNB-PANIC02) -- documented `# Panics` precondition: a mis-sized buffer is a caller bug
        self.permute(buf);
        self.butterflies(buf, false);
    }

    /// In-place inverse DFT with `1/N` scaling, so
    /// `inverse(forward(x)) == x`.
    ///
    /// # Panics
    /// Panics if `buf.len() != self.size()`.
    pub fn inverse(&self, buf: &mut [Complex32]) {
        assert_eq!(buf.len(), self.size, "buffer length must match plan size"); // tnb-lint: allow(TNB-PANIC02) -- documented `# Panics` precondition: a mis-sized buffer is a caller bug
        self.permute(buf);
        self.butterflies(buf, true);
        let k = 1.0 / self.size as f32;
        for v in buf.iter_mut() {
            *v = v.scale(k);
        }
    }

    fn permute(&self, buf: &mut [Complex32]) {
        for i in 0..self.size {
            let j = self.rev[i] as usize;
            if j > i {
                buf.swap(i, j);
            }
        }
    }

    // tnb-lint: no_alloc
    fn butterflies(&self, buf: &mut [Complex32], inverse: bool) {
        let n = self.size;
        let mut len = 2;
        let mut toff = 0;
        while len <= n {
            let half = len / 2;
            let tw = self
                .stage_twiddles
                .get(toff..toff + half)
                .unwrap_or_default();
            for block in buf.chunks_exact_mut(len) {
                let (a, b) = block.split_at_mut(half);
                crate::simd::butterfly(a, b, tw, inverse);
            }
            toff += half;
            len <<= 1;
        }
    }
}

/// Convenience one-shot forward FFT (allocates a plan; prefer [`FftPlan`] in
/// loops).
pub fn fft(input: &[Complex32]) -> Vec<Complex32> {
    let mut buf = input.to_vec();
    FftPlan::new(input.len()).forward(&mut buf);
    buf
}

/// Convenience one-shot inverse FFT (allocates a plan; prefer [`FftPlan`] in
/// loops).
pub fn ifft(input: &[Complex32]) -> Vec<Complex32> {
    let mut buf = input.to_vec();
    FftPlan::new(input.len()).inverse(&mut buf);
    buf
}

/// Squared-magnitude spectrum of `buf`: `|X[k]|²` for each bin. This is the
/// paper's signal-vector form `Y = |FFT(γ)| ⊙ |FFT(γ)|`.
pub fn power_spectrum(buf: &[Complex32]) -> Vec<f32> {
    buf.iter().map(|z| z.norm_sqr()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(N²) reference DFT used to validate the FFT.
    fn naive_dft(x: &[Complex32]) -> Vec<Complex32> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex32::ZERO;
                for (i, &v) in x.iter().enumerate() {
                    let w = Complex32::from_phase(
                        -2.0 * std::f64::consts::PI * (k * i % n) as f64 / n as f64,
                    );
                    acc += v * w;
                }
                acc
            })
            .collect()
    }

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex32> {
        // Tiny xorshift so the test has no external deps.
        let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) as f32 - 0.5
        };
        (0..n).map(|_| Complex32::new(next(), next())).collect()
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 64, 256] {
            let x = rand_signal(n, n as u64);
            let got = fft(&x);
            let want = naive_dft(&x);
            for (g, w) in got.iter().zip(&want) {
                assert!((*g - *w).abs() < 1e-3 * (n as f32).sqrt(), "n={n}");
            }
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for &n in &[2usize, 16, 1024, 2048] {
            let x = rand_signal(n, 7 + n as u64);
            let y = ifft(&fft(&x));
            for (a, b) in x.iter().zip(&y) {
                assert!((*a - *b).abs() < 1e-4, "n={n}");
            }
        }
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let mut x = vec![Complex32::ZERO; 32];
        x[0] = Complex32::ONE;
        let y = fft(&x);
        for v in y {
            assert!((v - Complex32::ONE).abs() < 1e-5);
        }
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 256;
        let k0 = 37;
        let x: Vec<Complex32> = (0..n)
            .map(|i| {
                Complex32::from_phase(2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64)
            })
            .collect();
        let y = fft(&x);
        let p = power_spectrum(&y);
        let max_bin = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_bin, k0);
        // All energy should be in bin k0 (tone is bin-aligned).
        let total: f32 = p.iter().sum();
        assert!(p[k0] / total > 0.999);
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 512;
        let x = rand_signal(n, 99);
        let y = fft(&x);
        let ex: f32 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f32 = y.iter().map(|v| v.norm_sqr()).sum::<f32>() / n as f32;
        assert!((ex - ey).abs() / ex < 1e-4);
    }

    #[test]
    fn linearity() {
        let n = 128;
        let a = rand_signal(n, 1);
        let b = rand_signal(n, 2);
        let sum: Vec<Complex32> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        for i in 0..n {
            assert!((fsum[i] - (fa[i] + fb[i])).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        FftPlan::new(48);
    }

    #[test]
    #[should_panic(expected = "must match plan size")]
    fn wrong_buffer_length_panics() {
        let plan = FftPlan::new(16);
        let mut buf = vec![Complex32::ZERO; 8];
        plan.forward(&mut buf);
    }

    #[test]
    fn size_one_is_identity() {
        let plan = FftPlan::new(1);
        let mut buf = [Complex32::new(2.0, -3.0)];
        plan.forward(&mut buf);
        assert_eq!(buf[0], Complex32::new(2.0, -3.0));
    }
}
