//! Reusable DSP workspace for the steady-state decode loop.
//!
//! The hot path of the receiver — de-chirp, FFT, fold, signal-vector
//! accumulation — runs once or more per symbol per packet. Allocating
//! fresh buffers for every call dominates small-symbol workloads and
//! fragments the heap under sustained load, so every per-symbol buffer
//! lives in a [`DspScratch`] that the caller owns and reuses.
//!
//! A `DspScratch` is deliberately *not* `Sync`: each worker thread of the
//! parallel receiver owns its own scratch, so the hot loop never takes a
//! lock. Construction is cheap (empty vectors, no plans); plans and
//! buffers grow lazily to the largest size seen and are then reused
//! indefinitely.

use crate::complex::Complex32;
use crate::fft::FftPlan;

/// Upper bound on vectors kept in the recycling pool, so a burst of
/// concurrent packets cannot pin an unbounded amount of memory.
const POOL_CAP: usize = 256;

/// Cache of [`FftPlan`]s keyed by transform size.
///
/// LoRa processing only ever uses a handful of sizes (`2^SF · OSF` for
/// the spreading factors in play), so a linear scan over a small vector
/// beats a hash map here.
#[derive(Debug, Default)]
pub struct FftPlanCache {
    plans: Vec<FftPlan>,
}

impl FftPlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        FftPlanCache::default()
    }

    /// Returns the plan for `size`, building it on first use.
    ///
    /// # Panics
    /// Panics if `size` is zero or not a power of two (see
    /// [`FftPlan::new`]).
    pub fn get(&mut self, size: usize) -> &FftPlan {
        if let Some(i) = self.plans.iter().position(|p| p.size() == size) {
            return &self.plans[i];
        }
        self.plans.push(FftPlan::new(size));
        let last = self.plans.len() - 1;
        &self.plans[last]
    }

    /// Number of distinct sizes planned so far.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when no plans have been built yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

/// Reusable buffers and cached FFT plans for one decoding thread.
///
/// The public buffer fields are working storage with no invariants: any
/// routine may clear and refill them. The only contract is temporal —
/// a routine that takes `&mut DspScratch` may clobber every buffer, so
/// callers must not hold data in the scratch across such a call. Within
/// the workspace:
///
/// - `cbuf` holds the current de-chirped window / in-place FFT,
/// - `cacc_a` / `cacc_b` hold coherent spectrum accumulations (the
///   fractional-sync search sums up- and down-chirp spectra),
/// - `fbuf` holds a folded length-`N` signal vector,
/// - `facc` holds a signal-vector accumulation across antennas.
#[derive(Debug, Default)]
pub struct DspScratch {
    /// FFT plans keyed by size, built on first use.
    pub plans: FftPlanCache,
    /// Complex working buffer (de-chirped window, in-place FFT).
    pub cbuf: Vec<Complex32>,
    /// Complex accumulator A (e.g. summed up-chirp spectra).
    pub cacc_a: Vec<Complex32>,
    /// Complex accumulator B (e.g. summed down-chirp spectra).
    pub cacc_b: Vec<Complex32>,
    /// CFO-rotator buffer (`e^{-j2πδn/L}` table refilled per window).
    pub crot: Vec<Complex32>,
    /// Real working buffer (folded signal vector).
    pub fbuf: Vec<f32>,
    /// Real accumulator (signal vector summed across antennas).
    pub facc: Vec<f32>,
    pool: Vec<Vec<f32>>,
    pool_hits: u64,
    pool_misses: u64,
}

impl DspScratch {
    /// Creates an empty scratch; buffers and plans grow on first use.
    pub fn new() -> Self {
        DspScratch::default()
    }

    /// Takes a zeroed `f32` vector of length `len` from the recycling
    /// pool, allocating only when the pool is empty.
    pub fn take_f32(&mut self, len: usize) -> Vec<f32> {
        match self.pool.pop() {
            Some(mut v) => {
                self.pool_hits += 1;
                v.clear();
                v.resize(len, 0.0);
                v
            }
            None => {
                self.pool_misses += 1;
                vec![0.0; len]
            }
        }
    }

    /// Returns a vector to the recycling pool for a later
    /// [`take_f32`](Self::take_f32). Vectors beyond the pool cap are
    /// dropped.
    pub fn recycle_f32(&mut self, v: Vec<f32>) {
        if v.capacity() > 0 && self.pool.len() < POOL_CAP {
            self.pool.push(v);
        }
    }

    /// Number of vectors currently available in the recycling pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Cumulative `(hits, misses)` of [`take_f32`](Self::take_f32) over
    /// this scratch's lifetime: a hit reused a pooled allocation, a miss
    /// allocated. Observability reads the delta around a decode to report
    /// pool effectiveness.
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool_hits, self.pool_misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_cache_reuses_plans() {
        let mut c = FftPlanCache::new();
        assert!(c.is_empty());
        let p1 = c.get(256) as *const FftPlan;
        let p2 = c.get(256) as *const FftPlan;
        assert_eq!(p1, p2);
        assert_eq!(c.get(256).size(), 256);
        c.get(1024);
        assert_eq!(c.len(), 2);
        // The original plan is still served for its size.
        assert_eq!(c.get(256).size(), 256);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn plan_cache_rejects_bad_size() {
        FftPlanCache::new().get(48);
    }

    #[test]
    fn pool_recycles_allocations() {
        let mut s = DspScratch::new();
        let v = s.take_f32(64);
        assert_eq!(v.len(), 64);
        let ptr = v.as_ptr();
        s.recycle_f32(v);
        assert_eq!(s.pooled(), 1);
        // Same (or smaller) length reuses the same allocation.
        let v2 = s.take_f32(32);
        assert_eq!(v2.as_ptr(), ptr);
        assert_eq!(v2.len(), 32);
        assert!(v2.iter().all(|&x| x == 0.0));
        assert_eq!(s.pooled(), 0);
    }

    #[test]
    fn pool_is_bounded() {
        let mut s = DspScratch::new();
        for _ in 0..(POOL_CAP + 10) {
            s.recycle_f32(vec![0.0; 8]);
        }
        assert_eq!(s.pooled(), POOL_CAP);
        // Zero-capacity vectors are not worth pooling.
        let before = s.pooled();
        s.recycle_f32(Vec::new());
        assert_eq!(s.pooled(), before);
    }
}
