//! Small statistics helpers used by Thrive (median deviations) and the
//! evaluation harness (CDFs, percentiles, dB conversions).

/// Median of a slice, reordering it in place (avoids a copy in hot loops).
/// Returns 0.0 for an empty slice.
pub fn median_mut(data: &mut [f32]) -> f32 {
    let n = data.len();
    if n == 0 {
        return 0.0;
    }
    let mid = n / 2;
    let (_, m, _) = data.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
    let hi = *m;
    if n % 2 == 1 {
        hi
    } else {
        // Lower middle is the max of the left partition.
        let lo = data[..mid]
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        (lo + hi) / 2.0
    }
}

/// Median of a slice without mutating it.
pub fn median(data: &[f32]) -> f32 {
    let mut copy = data.to_vec();
    median_mut(&mut copy)
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(data: &[f32]) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    (data.iter().map(|&v| v as f64).sum::<f64>() / data.len() as f64) as f32
}

/// Linearly interpolated percentile, `p` in `[0, 100]`. 0.0 for empty input.
pub fn percentile(data: &[f32], p: f32) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f32;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f32;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Empirical CDF evaluated at each of `points`: fraction of `data` ≤ point.
pub fn ecdf_at(data: &[f32], points: &[f32]) -> Vec<f32> {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    points
        .iter()
        .map(|&p| {
            if sorted.is_empty() {
                0.0
            } else {
                let count = sorted.partition_point(|&v| v <= p);
                count as f32 / sorted.len() as f32
            }
        })
        .collect()
}

/// Converts a linear power ratio to decibels. Non-positive input maps to
/// `-inf` dB.
pub fn to_db(linear: f32) -> f32 {
    if linear <= 0.0 {
        f32::NEG_INFINITY
    } else {
        10.0 * linear.log10()
    }
}

/// Converts decibels to a linear power ratio.
pub fn from_db(db: f32) -> f32 {
    10f32.powf(db / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[5.0]), 5.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn median_with_duplicates() {
        assert_eq!(median(&[1.0, 1.0, 1.0, 9.0]), 1.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn percentile_endpoints_and_interp() {
        let d = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&d, 0.0), 10.0);
        assert_eq!(percentile(&d, 100.0), 50.0);
        assert_eq!(percentile(&d, 50.0), 30.0);
        assert!((percentile(&d, 25.0) - 20.0).abs() < 1e-5);
        assert!((percentile(&d, 62.5) - 35.0).abs() < 1e-5);
    }

    #[test]
    fn ecdf_fractions() {
        let d = [1.0, 2.0, 3.0, 4.0];
        let c = ecdf_at(&d, &[0.5, 1.0, 2.5, 4.0, 9.0]);
        assert_eq!(c, vec![0.0, 0.25, 0.5, 1.0, 1.0]);
    }

    #[test]
    fn db_roundtrip() {
        for &db in &[-20.0f32, -3.0, 0.0, 10.0, 17.5] {
            assert!((to_db(from_db(db)) - db).abs() < 1e-4);
        }
        assert_eq!(to_db(0.0), f32::NEG_INFINITY);
        assert!((from_db(3.0103) - 2.0).abs() < 1e-3);
    }
}
