//! Critically-sampled polyphase DFT filterbank: splits one wideband IQ
//! stream into `M` evenly spaced channels, each decimated by `M`.
//!
//! A real LoRa gateway (SX1302 class) digitizes one wide swath and
//! channelizes the 8 standard uplink channels in hardware; this module
//! reproduces that front-end so the per-channel `StreamingReceiver`s can
//! keep running at their native rate. Channels sit on an `fs/M` raster
//! (with `fs` the wideband input rate): channel `c ∈ 0..M` is centered
//! at offset `(c − M/2)·fs/M`, ascending in frequency. (EU868 hardware
//! uses a 200 kHz raster; the synthetic front-end keeps the raster tied
//! to `fs/M` so every downstream receiver sees exactly `fs/M` samples
//! per second — with `M = 8` and 1 Msps channels, an 8 Msps input.)
//!
//! The analysis bank computes, per output step `n` and DFT bin `k`,
//!
//! ```text
//! y_k[n] = Σ_l h[l] · x[nM − l] · e^{+j2πkl/M}
//!        = Σ_p e^{+j2πkp/M} · v_p[n],   v_p[n] = Σ_t h[tM+p] · x[nM−tM−p]
//! ```
//!
//! i.e. `M` polyphase FIR partial sums followed by an `M`-point DFT
//! (direct `M×M` matrix — `M` is 8, a matrix beats FFT bookkeeping).
//! The prototype is a Hamming-windowed sinc with cutoff at half the
//! channel spacing and unity DC gain, generated in `f64`.
//!
//! Streaming state (the FIR delay line and the decimation phase) is kept
//! across [`Channelizer::push`] calls, so output is **chunk-invariant**:
//! any way of slicing the same input produces bit-identical per-channel
//! streams. All accumulation orders are fixed, so output is also
//! deterministic across runs and worker counts.

use crate::complex::Complex32;

/// Configuration for [`Channelizer`].
#[derive(Debug, Clone, Copy)]
pub struct ChannelizerConfig {
    /// Number of channels `M` (and the decimation factor). Clamped to at
    /// least 1. The LoRa uplink default is 8.
    pub channels: usize,
    /// Prototype FIR taps per polyphase branch; total length is
    /// `channels · taps_per_phase`. Clamped to at least 1.
    pub taps_per_phase: usize,
}

impl Default for ChannelizerConfig {
    fn default() -> Self {
        ChannelizerConfig {
            channels: 8,
            taps_per_phase: 8,
        }
    }
}

/// Streaming polyphase analysis filterbank. See the module docs.
#[derive(Debug, Clone)]
pub struct Channelizer {
    m: usize,
    /// Hamming-windowed sinc prototype, length `m · taps_per_phase`.
    proto: Vec<f32>,
    /// DFT matrix `dft[k·m + p] = e^{+j2πkp/m}`, generated in `f64`.
    dft: Vec<Complex32>,
    /// FIR delay line (newest sample at `wpos`, ring layout).
    delay: Vec<Complex32>,
    wpos: usize,
    /// Input samples accumulated toward the next output step (0..m).
    phase: usize,
    /// Per-step polyphase partial sums (scratch, length `m`).
    vbuf: Vec<Complex32>,
}

impl Channelizer {
    /// Builds a channelizer for `cfg`.
    pub fn new(cfg: ChannelizerConfig) -> Self {
        let m = cfg.channels.max(1);
        let taps = cfg.taps_per_phase.max(1);
        let len = m * taps;
        // Windowed-sinc prototype, cutoff at half the channel spacing
        // (±fs/2M): sinc((i − center)/M) · hamming(i), unity DC gain.
        // The LoRa signal occupies only the middle of each channel
        // (125 kHz of 1 MHz at the default raster), so the generous
        // transition band still leaves the passband flat and the
        // neighbouring channels well rejected.
        let center = (len - 1) as f64 / 2.0;
        let mut proto_f64: Vec<f64> = (0..len)
            .map(|i| {
                let t = (i as f64 - center) / m as f64;
                let s = if t.abs() < 1e-12 {
                    1.0
                } else {
                    (std::f64::consts::PI * t).sin() / (std::f64::consts::PI * t)
                };
                let w = if len > 1 {
                    0.54 - 0.46 * (2.0 * std::f64::consts::PI * i as f64 / (len - 1) as f64).cos()
                } else {
                    1.0
                };
                s * w
            })
            .collect();
        let sum: f64 = proto_f64.iter().sum();
        if sum.abs() > 1e-12 {
            for h in proto_f64.iter_mut() {
                *h /= sum;
            }
        }
        let proto: Vec<f32> = proto_f64.iter().map(|&h| h as f32).collect();
        let dft: Vec<Complex32> = (0..m * m)
            .map(|i| {
                let (k, p) = (i / m, i % m);
                Complex32::from_phase(2.0 * std::f64::consts::PI * ((k * p) % m) as f64 / m as f64)
            })
            .collect();
        Channelizer {
            m,
            proto,
            dft,
            delay: vec![Complex32::ZERO; len],
            wpos: 0,
            phase: 0,
            vbuf: Vec::new(),
        }
    }

    /// Number of channels `M` (also the decimation factor).
    pub fn channels(&self) -> usize {
        self.m
    }

    /// Prototype filter length (`M · taps_per_phase`).
    pub fn filter_len(&self) -> usize {
        self.delay.len()
    }

    /// Center-frequency offset of channel `c` as a fraction of the
    /// wideband input rate: `(c − M/2)/M`.
    pub fn channel_offset(&self, c: usize) -> f64 {
        (c as f64 - (self.m / 2) as f64) / self.m as f64
    }

    /// Clears the delay line and decimation phase for a fresh stream.
    pub fn reset(&mut self) {
        for d in self.delay.iter_mut() {
            *d = Complex32::ZERO;
        }
        self.wpos = 0;
        self.phase = 0;
    }

    /// Feeds wideband samples; appends each completed output step to the
    /// per-channel vectors (`out[c]` gains one sample per `M` input
    /// samples). Channels beyond `out.len()` are dropped; extra `out`
    /// entries are left untouched.
    pub fn push(&mut self, samples: &[Complex32], out: &mut [Vec<Complex32>]) {
        let l = self.delay.len();
        for &s in samples {
            self.wpos = if self.wpos == 0 { l - 1 } else { self.wpos - 1 };
            self.delay[self.wpos] = s;
            self.phase += 1;
            if self.phase == self.m {
                self.phase = 0;
                self.step(out);
            }
        }
    }

    /// One output step: polyphase partial sums, then the `M`-point DFT.
    // tnb-lint: no_alloc
    fn step(&mut self, out: &mut [Vec<Complex32>]) {
        let m = self.m;
        let l = self.delay.len();
        self.vbuf.clear();
        self.vbuf.resize(m, Complex32::ZERO);
        // delay[(wpos + j) % l] is x[now − j]; branch p accumulates taps
        // j ≡ p (mod m) in ascending-j order (fixed, deterministic).
        for (j, &h) in self.proto.iter().enumerate() {
            let x = self.delay[(self.wpos + j) % l];
            self.vbuf[j % m] += x.scale(h);
        }
        // Logical channel c (ascending frequency) is DFT bin (c + M/2) % M.
        for (c, dst) in out.iter_mut().enumerate().take(m) {
            let k = (c + m / 2) % m;
            let mut acc = Complex32::ZERO;
            for (p, &v) in self.vbuf.iter().enumerate() {
                acc += v * self.dft[k * m + p];
            }
            dst.push(acc);
        }
    }
}

/// Mixes `samples` (at the wideband rate) up to channel `c`'s center:
/// sample `n` is multiplied by `e^{+j2π(c − M/2)n/M}`. The rotator is
/// periodic with period `M` and generated in `f64`, so long scenes
/// accumulate no phase error. Used to synthesize multi-channel scenes.
pub fn upconvert(samples: &mut [Complex32], c: usize, m: usize) {
    let m = m.max(1);
    let off = c as i64 - (m / 2) as i64;
    let rot: Vec<Complex32> = (0..m)
        .map(|r| {
            let cyc = (off * r as i64).rem_euclid(m as i64);
            Complex32::from_phase(2.0 * std::f64::consts::PI * cyc as f64 / m as f64)
        })
        .collect();
    for (n, s) in samples.iter_mut().enumerate() {
        *s *= rot[n % m];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, cycles_per_sample: f64) -> Vec<Complex32> {
        (0..n)
            .map(|i| {
                Complex32::from_phase(2.0 * std::f64::consts::PI * cycles_per_sample * i as f64)
            })
            .collect()
    }

    fn energy(x: &[Complex32]) -> f32 {
        x.iter().map(|v| v.norm_sqr()).sum()
    }

    fn run(ch: &mut Channelizer, input: &[Complex32], chunk: usize) -> Vec<Vec<Complex32>> {
        let mut out: Vec<Vec<Complex32>> = (0..ch.channels()).map(|_| Vec::new()).collect();
        for c in input.chunks(chunk.max(1)) {
            ch.push(c, &mut out);
        }
        out
    }

    #[test]
    fn decimates_by_m() {
        let mut ch = Channelizer::new(ChannelizerConfig::default());
        let out = run(&mut ch, &tone(8000, 0.0), 8000);
        for c in &out {
            assert_eq!(c.len(), 1000);
        }
    }

    #[test]
    fn tone_lands_in_its_channel() {
        // A tone at each channel center must dominate that channel.
        for c in 0..8usize {
            let mut ch = Channelizer::new(ChannelizerConfig::default());
            let off = (c as f64 - 4.0) / 8.0;
            let input = tone(16_000, off);
            let out = run(&mut ch, &input, 16_000);
            let energies: Vec<f32> = out.iter().map(|o| energy(o)).collect();
            let best = energies
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(best, c, "tone at offset {off}: energies {energies:?}");
            // Strong isolation: every other channel at least 30 dB down.
            for (i, &e) in energies.iter().enumerate() {
                if i != c {
                    assert!(
                        e < energies[c] * 1e-3,
                        "channel {i} leakage {e} vs {}",
                        energies[c]
                    );
                }
            }
        }
    }

    #[test]
    fn chunk_invariant_bit_exact() {
        let input: Vec<Complex32> = (0..10_000)
            .map(|i| {
                let t = i as f64 * 0.013;
                Complex32::new((t.sin() * 0.7) as f32, (t.cos() * 0.3) as f32)
            })
            .collect();
        let mut ch1 = Channelizer::new(ChannelizerConfig::default());
        let whole = run(&mut ch1, &input, usize::MAX);
        for chunk in [1usize, 7, 64, 333, 4096] {
            let mut ch2 = Channelizer::new(ChannelizerConfig::default());
            let split = run(&mut ch2, &input, chunk);
            assert_eq!(whole, split, "chunk={chunk}");
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let input = tone(4096, 0.05);
        let mut ch = Channelizer::new(ChannelizerConfig::default());
        let first = run(&mut ch, &input, 999);
        ch.reset();
        let mut out: Vec<Vec<Complex32>> = (0..8).map(|_| Vec::new()).collect();
        ch.push(&input, &mut out);
        assert_eq!(first, out);
    }

    #[test]
    fn upconvert_by_dc_channel_is_identity() {
        let mut x = tone(64, 0.01);
        let y = x.clone();
        upconvert(&mut x, 4, 8); // offset 0
        assert_eq!(x, y);
    }

    #[test]
    fn upconvert_then_channelize_recovers_channel() {
        // Baseband noise-ish signal upconverted to channel 6 must land
        // in channel 6.
        let mut x: Vec<Complex32> = (0..16_000)
            .map(|i| Complex32::from_phase((i as f64 * 0.002).sin() * 0.5))
            .collect();
        upconvert(&mut x, 6, 8);
        let mut ch = Channelizer::new(ChannelizerConfig::default());
        let out = run(&mut ch, &x, 16_000);
        let energies: Vec<f32> = out.iter().map(|o| energy(o)).collect();
        let best = energies
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(best, 6, "{energies:?}");
    }

    #[test]
    fn channel_offsets_are_ascending() {
        let ch = Channelizer::new(ChannelizerConfig::default());
        for c in 0..7 {
            assert!(ch.channel_offset(c) < ch.channel_offset(c + 1));
        }
        assert_eq!(ch.channel_offset(4), 0.0);
    }
}
