#!/bin/bash
# Regenerates every experiment output recorded in EXPERIMENTS.md.
set -x
cd /root/repo
B="cargo run -q --release -p tnb-bench --bin"
$B fig01_sensitivity                                   > results/fig01.txt 2>&1
$B fig08_qsearch                                       > results/fig08.txt 2>&1
$B fig10_snr_cdf -- --duration 4                       > results/fig10.txt 2>&1
$B fig11_medium_usage -- --duration 4                  > results/fig11.txt 2>&1
$B table1_bec_capability                               > results/table1.txt 2>&1
$B table2_bec_complexity                               > results/table2.txt 2>&1
$B fig20_bec_error_prob                                > results/fig20.txt 2>&1
$B fig16_bec_rescued -- --duration 4 --runs 2          > results/fig16.txt 2>&1
$B fig18_collision_levels -- --duration 4 --runs 2     > results/fig18.txt 2>&1
$B fig15_ablation -- --duration 4                      > results/fig15.txt 2>&1
$B fig17_prr_snr -- --duration 4                       > results/fig17.txt 2>&1
$B fig19_etu -- --duration 5 --runs 2                  > results/fig19.txt 2>&1
$B artifact_counts -- --duration 4                     > results/artifact.txt 2>&1
$B fig12_14_throughput -- --duration 4                 > results/fig12_14.txt 2>&1
echo ALL DONE
