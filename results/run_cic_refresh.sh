#!/bin/bash
# Re-runs the CIC-involving experiments after the CIC peak-set-intersection
# rework, plus the extra ablations.
set -x
cd /root/repo
B="cargo run -q --release -p tnb-bench --bin"
$B ablation_w                                          > results/ablation_w.txt 2>&1
$B ablation_thrive -- --duration 4                     > results/ablation_thrive.txt 2>&1
$B fig17_prr_snr -- --duration 4                       > results/fig17.txt 2>&1
$B fig19_etu -- --duration 5 --runs 2                  > results/fig19.txt 2>&1
$B fig15_ablation -- --duration 4                      > results/fig15.txt 2>&1
$B fig12_14_throughput -- --duration 4                 > results/fig12_14.txt 2>&1
echo REFRESH DONE
