//! Offline API-compatible subset of `rand` 0.8.
//!
//! Provides the exact surface this workspace uses — `Rng::gen`,
//! `Rng::gen_range`, `SeedableRng::seed_from_u64`, `rngs::StdRng` — with a
//! deterministic, platform-independent generator (xoshiro256++ seeded via
//! SplitMix64). Streams are *not* bit-compatible with upstream `rand`; all
//! seeded expectations in this repo were produced with this implementation.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (full range for integers,
    /// `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let x: f64 = self.gen();
        x < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types with a uniform sampler over arbitrary ranges.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform value in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform value in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty, $un:ty;)*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as $un;
                // Widening-multiply range reduction (Lemire); the modulo
                // bias is < 2^-64 per draw, irrelevant for simulation use.
                let r = rng.next_u64();
                let hi128 = ((r as u128).wrapping_mul(span as u128) >> 64) as $un;
                lo.wrapping_add(hi128 as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as $un;
                if span == <$un>::MAX {
                    return rng.next_u64() as $t;
                }
                let r = rng.next_u64();
                let hi128 = ((r as u128).wrapping_mul(span as u128 + 1) >> 64) as $un;
                lo.wrapping_add(hi128 as $t)
            }
        }
    )*};
}

impl_uniform_int! {
    u8 => u64, u64;
    u16 => u64, u64;
    u32 => u64, u64;
    u64 => u64, u64;
    usize => u64, u64;
    i8 => i64, u64;
    i16 => i64, u64;
    i32 => i64, u64;
    i64 => i64, u64;
    isize => i64, u64;
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + u * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(10usize..20);
            assert!((10..20).contains(&u));
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn range_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let imean: f64 = (0..n).map(|_| rng.gen_range(0u8..16) as f64).sum::<f64>() / n as f64;
        assert!((imean - 7.5).abs() < 0.1, "imean {imean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
