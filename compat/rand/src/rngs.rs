//! Named RNGs. Only `StdRng` is provided; it is a xoshiro256++ generator
//! (fast, 256-bit state, passes BigCrush) rather than upstream's ChaCha12,
//! so streams differ from the real `rand` crate by design.

use crate::{RngCore, SeedableRng};

/// The standard deterministic RNG of this workspace.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, 2019).
        let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        out
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(bytes);
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }
}
