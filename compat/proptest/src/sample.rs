//! Sampling strategies (`subsequence`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy generating order-preserving `amount`-element subsequences of
/// `values`.
pub fn subsequence<T: Clone>(values: Vec<T>, amount: usize) -> Subsequence<T> {
    assert!(
        amount <= values.len(),
        "subsequence: amount {} exceeds {} values",
        amount,
        values.len()
    );
    Subsequence { values, amount }
}

/// See [`subsequence`].
#[derive(Debug, Clone)]
pub struct Subsequence<T> {
    values: Vec<T>,
    amount: usize,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        // Floyd's algorithm for a uniform k-subset, then restore order.
        let n = self.values.len();
        let k = self.amount;
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for j in n - k..n {
            let t = rng.below(j as u64 + 1) as usize;
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen.sort_unstable();
        chosen.iter().map(|&i| self.values[i].clone()).collect()
    }
}
