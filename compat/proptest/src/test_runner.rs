//! Config, deterministic RNG and case-rejection marker for the offline
//! `proptest` subset.

/// Configuration for one [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; DSP-heavy properties make that slow, and
        // every block in this repo that needs a specific count sets it.
        ProptestConfig { cases: 64 }
    }
}

/// Marker returned by `prop_assume!` to discard a case.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// Deterministic generator for property-test inputs (SplitMix64 over a
/// name-derived seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a), so each test has a fixed stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
