//! Offline API-compatible subset of `proptest` 1.
//!
//! Covers exactly what this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert*` / [`prop_assume!`], [`Strategy`]
//! with `prop_map`, `any::<T>()`, numeric-range and tuple strategies,
//! `collection::vec` and `sample::subsequence`.
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failing case panics with the generated inputs in
//!   scope; rerun under a debugger or add a regression test.
//! - **Deterministic.** The RNG seed is derived from the test function
//!   name, so a property test generates the same cases on every run and
//!   platform (this repo requires a deterministic test suite).

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic property tests.
///
/// Supports the upstream surface used in this repo:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u8..16, v in proptest::collection::vec(any::<u8>(), 0..32)) {
///         prop_assert!(x < 16);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __cfg.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __cfg.cases.saturating_mul(20).saturating_add(100),
                    "proptest (offline subset): too many rejected cases in {}",
                    stringify!($name),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::Rejected> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if __outcome.is_ok() {
                    __accepted += 1;
                }
            }
        }
    )*};
}

/// Like `assert!`, inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Like `assert_eq!`, inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Like `assert_ne!`, inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Rejects the current case (it is regenerated, not counted as run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}
