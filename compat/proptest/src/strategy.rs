//! The [`Strategy`] trait and the primitive strategies the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking; `generate`
/// returns a finished value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: predicate rejected 10000 consecutive values");
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (upstream `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for `A` (upstream `any::<A>()`).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite full-ish range; property tests here only need variety.
        (rng.unit_f64() as f32 - 0.5) * 2.0e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 2.0e12
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
