//! Offline API-compatible subset of `criterion` 0.5.
//!
//! Implements the macro + builder surface the workspace's benches use and
//! measures wall-clock time per iteration (median of a few samples after a
//! short warmup). It does not implement criterion's statistical analysis,
//! HTML reports, or baseline comparisons — it exists so `cargo bench`
//! works offline and prints comparable `ns/iter` numbers.
//!
//! Environment knobs:
//! - `CRITERION_QUICK=1` — one short sample per benchmark (CI smoke mode).

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Target measurement time per sample.
    measure: Duration,
    /// Samples per benchmark (median is reported).
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("CRITERION_QUICK").is_ok();
        Criterion {
            measure: if quick {
                Duration::from_millis(30)
            } else {
                Duration::from_millis(300)
            },
            samples: if quick { 1 } else { 3 },
        }
    }
}

impl Criterion {
    /// Upstream-compatible no-op (CLI args are ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.measure, self.samples, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (upstream semantics approximated).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Upstream's sample_size counts analysis samples (≥ 10); here it
        // only bounds how many timing samples we take.
        self.sample_size = Some(n.clamp(1, 10));
        self
    }

    /// Declares per-iteration throughput for the following benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: IntoBenchmarkId, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(
            &full,
            self.criterion.measure,
            self.sample_size.unwrap_or(self.criterion.samples),
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(
            &full,
            self.criterion.measure,
            self.sample_size.unwrap_or(self.criterion.samples),
            self.throughput,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group (upstream writes reports here; a no-op offline).
    pub fn finish(&mut self) {}
}

/// Per-iteration work declared by [`BenchmarkGroup::throughput`].
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, possibly parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just a parameter (used inside groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a display id (strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display form.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Iterations to run this sample.
    iters: u64,
    /// Measured elapsed time for those iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    measure: Duration,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Calibrate: run single iterations until we know roughly how long one
    // takes, then size samples to fill `measure`.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = (measure.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        ns.push(b.elapsed.as_nanos() as f64 / per_sample as f64);
    }
    ns.sort_by(f64::total_cmp);
    let median = ns[ns.len() / 2];
    let (lo, hi) = (ns[0], ns[ns.len() - 1]);

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  thrpt: {:.4} Kelem/s", n as f64 / median * 1e6),
        Throughput::Bytes(n) => {
            format!("  thrpt: {:.4} MiB/s", n as f64 / median * 1e9 / 1048576.0)
        }
    });
    println!(
        "{id:<50} time: [{} {} {}]{}",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi),
        rate.unwrap_or_default()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
