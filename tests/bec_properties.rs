//! Property-based tests for BEC invariants (paper Table 1 and §6).

use proptest::prelude::*;
use tnb::core::bec::decode_block;
use tnb::phy::hamming::encode;
use tnb::phy::params::CodingRate;

fn any_cr() -> impl Strategy<Value = CodingRate> {
    (1usize..=4).prop_map(|v| CodingRate::from_value(v).unwrap())
}

/// Nibbles and per-row flip patterns for `k` error columns over `sf` rows.
fn block_with_errors(
    cr: CodingRate,
    k: usize,
) -> impl Strategy<Value = (Vec<u8>, Vec<usize>, Vec<u8>)> {
    let width = cr.codeword_len();
    (
        proptest::collection::vec(0u8..16, 7..=12),
        proptest::sample::subsequence((0..width).collect::<Vec<_>>(), k),
        proptest::collection::vec(0u8..(1 << k) as u8, 12),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any clean block decodes to itself with a single candidate.
    #[test]
    fn clean_block_identity(cr in any_cr(), nibbles in proptest::collection::vec(0u8..16, 7..=12)) {
        let rows: Vec<u8> = nibbles.iter().map(|&n| encode(n, cr)).collect();
        let dec = decode_block(&rows, cr);
        prop_assert!(!dec.repaired);
        prop_assert_eq!(dec.candidates, vec![nibbles]);
    }

    /// 1-column errors: always corrected for every CR (paper Table 1).
    #[test]
    fn one_column_always_corrected(
        cr in any_cr(),
        nibbles in proptest::collection::vec(0u8..16, 7..=12),
        col in 0usize..8,
        flips in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let col = col % cr.codeword_len();
        prop_assume!(flips.iter().take(nibbles.len()).any(|&x| x));
        let mut rows: Vec<u8> = nibbles.iter().map(|&n| encode(n, cr)).collect();
        for (i, row) in rows.iter_mut().enumerate() {
            if flips[i] {
                *row ^= 1 << col;
            }
        }
        let dec = decode_block(&rows, cr);
        prop_assert!(dec.candidates.iter().any(|c| c == &nibbles),
            "cr={cr:?} col={col}");
    }

    /// 2-column errors with CR 4: always corrected (paper §A.6).
    #[test]
    fn cr4_two_columns_always_corrected(
        (nibbles, cols, flips) in block_with_errors(CodingRate::CR4, 2),
    ) {
        let cr = CodingRate::CR4;
        let mut rows: Vec<u8> = nibbles.iter().map(|&n| encode(n, cr)).collect();
        let mut touched = [false; 2];
        for (i, row) in rows.iter_mut().enumerate() {
            for (b, t) in touched.iter_mut().enumerate() {
                if flips[i] & (1 << b) != 0 {
                    *row ^= 1 << cols[b];
                    *t = true;
                }
            }
        }
        // Only a true 2-column error pattern is claimed (both columns hit).
        prop_assume!(touched[0] && touched[1]);
        let dec = decode_block(&rows, cr);
        prop_assert!(dec.candidates.iter().any(|c| c == &nibbles), "cols={cols:?}");
    }

    /// BEC candidates are always within the paper's complexity bounds.
    #[test]
    fn candidate_counts_bounded(
        cr in any_cr(),
        nibbles in proptest::collection::vec(0u8..16, 7..=12),
        noise in proptest::collection::vec(any::<u8>(), 12),
    ) {
        let mut rows: Vec<u8> = nibbles.iter().map(|&n| encode(n, cr)).collect();
        for (i, row) in rows.iter_mut().enumerate() {
            *row ^= noise[i] & tnb::phy::hamming::cw_mask(cr);
        }
        let dec = decode_block(&rows, cr);
        let bound = match cr {
            CodingRate::CR1 => 5,
            CodingRate::CR2 => 2,
            CodingRate::CR3 => 3,
            CodingRate::CR4 => 8, // up to 6+2 successful Δ₁ attempts (§6.7.2)
        };
        prop_assert!(dec.candidates.len() <= bound,
            "cr={cr:?}: {} candidates", dec.candidates.len());
        prop_assert!(!dec.candidates.is_empty());
    }

    /// Arbitrary garbage never panics and always yields some candidate.
    #[test]
    fn garbage_is_safe(
        cr in any_cr(),
        rows in proptest::collection::vec(any::<u8>(), 7..=12),
    ) {
        let rows: Vec<u8> = rows
            .into_iter()
            .map(|r| r & tnb::phy::hamming::cw_mask(cr))
            .collect();
        let dec = decode_block(&rows, cr);
        prop_assert!(!dec.candidates.is_empty());
        for c in &dec.candidates {
            prop_assert_eq!(c.len(), rows.len());
            prop_assert!(c.iter().all(|&n| n < 16));
        }
    }
}
