//! Property-based tests for the PHY substrate: every encode/decode layer
//! must round-trip for arbitrary inputs.

use proptest::prelude::*;
use tnb::phy::params::{CodingRate, LoRaParams, SpreadingFactor};
use tnb::phy::{decoder, encoder, gray, hamming, interleaver, whitening};

fn any_cr() -> impl Strategy<Value = CodingRate> {
    (1usize..=4).prop_map(|v| CodingRate::from_value(v).unwrap())
}

fn any_sf() -> impl Strategy<Value = SpreadingFactor> {
    (7usize..=12).prop_map(|v| SpreadingFactor::from_value(v).unwrap())
}

proptest! {
    #[test]
    fn whitening_is_involution(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(whitening::whiten(&whitening::whiten(&data)), data);
    }

    #[test]
    fn nibble_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let nib = encoder::bytes_to_nibbles(&data);
        prop_assert_eq!(encoder::nibbles_to_bytes(&nib), data);
    }

    #[test]
    fn gray_roundtrip_and_unit_distance(sf in any_sf(), h in 0u16..4096) {
        let n = sf.chips() as u16;
        let h = h % n;
        let bits = gray::symbol_to_bits(h, sf.value());
        prop_assert_eq!(gray::bits_to_symbol(bits, sf.value()), h);
        // ±1-bin neighbours differ in exactly one bit.
        let next = gray::symbol_to_bits((h + 1) % n, sf.value());
        prop_assert_eq!((bits ^ next).count_ones(), 1);
    }

    #[test]
    fn hamming_corrects_any_single_bit(cr in any_cr(), nibble in 0u8..16, bit in 0usize..8) {
        let cw = hamming::encode(nibble, cr);
        let bit = bit % cr.codeword_len();
        let corrupted = cw ^ (1 << bit);
        let decoded = hamming::decode_default(corrupted, cr);
        match cr {
            // Distance-3/4 codes correct 1-bit errors.
            CodingRate::CR3 | CodingRate::CR4 => prop_assert_eq!(decoded.nibble, nibble),
            // Distance-2 codes at least land within one bit of the input.
            _ => prop_assert!(decoded.distance <= 1),
        }
    }

    #[test]
    fn interleaver_roundtrip(
        rows in proptest::collection::vec(any::<u8>(), 1..=16),
        cw_len in 5usize..=8,
    ) {
        let rows: Vec<u8> = rows
            .into_iter()
            .map(|r| r & ((1u16 << cw_len) - 1) as u8)
            .collect();
        let words = interleaver::interleave(&rows, cw_len);
        prop_assert_eq!(interleaver::deinterleave(&words, rows.len(), cw_len), rows);
    }

    #[test]
    fn packet_symbols_roundtrip(
        sf in any_sf(),
        cr in any_cr(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let params = LoRaParams::new(sf, cr);
        let symbols = encoder::encode_packet_symbols(&payload, &params);
        let decoded = decoder::decode_packet(&symbols, &params).ok();
        prop_assert_eq!(decoded.as_deref(), Some(payload.as_slice()));
    }

    #[test]
    fn single_symbol_bin_error_never_panics(
        sf in any_sf(),
        cr in any_cr(),
        payload in proptest::collection::vec(any::<u8>(), 1..32),
        sym_idx in any::<usize>(),
        err in 1u16..4096,
    ) {
        let params = LoRaParams::new(sf, cr);
        let mut symbols = encoder::encode_packet_symbols(&payload, &params);
        let i = sym_idx % symbols.len();
        let n = params.n() as u16;
        symbols[i] = (symbols[i] + err % n) % n;
        // Must either decode to the exact payload or fail cleanly; a wrong
        // payload would mean a CRC collision (astronomically unlikely).
        if let Ok(got) = decoder::decode_packet(&symbols, &params) {
            prop_assert_eq!(got, payload);
        }
    }
}
