//! Cross-crate end-to-end tests: transmitter → channel → receivers, with
//! randomized payloads and impairments.

use proptest::prelude::*;
use tnb::channel::fading::ChannelModel;
use tnb::channel::trace::{PacketConfig, TraceBuilder};
use tnb::core::TnbReceiver;
use tnb::phy::{CodingRate, LoRaParams, SpreadingFactor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any payload over an impaired AWGN channel decodes exactly.
    #[test]
    fn random_payload_roundtrips(
        payload in proptest::collection::vec(any::<u8>(), 1..40),
        cr_v in 1usize..=4,
        cfo_hz in -4800.0f64..4800.0,
        frac in 0.0f32..0.99,
        seed in 0u64..1000,
    ) {
        let params = LoRaParams::new(
            SpreadingFactor::SF8,
            CodingRate::from_value(cr_v).unwrap(),
        );
        let mut b = TraceBuilder::new(params, seed);
        b.add_packet(
            &payload,
            PacketConfig {
                start_sample: 4_321,
                snr_db: 10.0,
                cfo_hz,
                frac_delay: frac,
                ..Default::default()
            },
        );
        let trace = b.build();
        let decoded = TnbReceiver::new(params).decode(trace.samples());
        prop_assert_eq!(decoded.len(), 1, "payload len {}", payload.len());
        prop_assert_eq!(&decoded[0].payload, &payload);
    }

    /// Two randomly offset colliding packets: TnB decodes both, and
    /// nothing it outputs is wrong (CRC gate).
    #[test]
    fn random_collisions_never_yield_wrong_payloads(
        gap_symbols in 13usize..40,
        gap_frac in 0usize..2047,
        snr2 in 6.0f32..14.0,
        cfo1 in -4000.0f64..4000.0,
        cfo2 in -4000.0f64..4000.0,
        seed in 0u64..1000,
    ) {
        let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        let l = params.samples_per_symbol();
        let pay1 = b"collision test A".to_vec();
        let pay2 = b"collision test B".to_vec();
        prop_assume!((cfo1 - cfo2).abs() > 600.0); // distinguishable nodes
        let mut b = TraceBuilder::new(params, seed);
        b.add_packet(
            &pay1,
            PacketConfig { start_sample: 3_000, snr_db: 12.0, cfo_hz: cfo1, ..Default::default() },
        );
        b.add_packet(
            &pay2,
            PacketConfig {
                start_sample: 3_000 + gap_symbols * l + gap_frac,
                snr_db: snr2,
                cfo_hz: cfo2,
                ..Default::default()
            },
        );
        let trace = b.build();
        let decoded = TnbReceiver::new(params).decode(trace.samples());
        for d in &decoded {
            prop_assert!(
                d.payload == pay1 || d.payload == pay2,
                "ghost payload {:?}",
                d.payload
            );
        }
        prop_assert!(!decoded.is_empty());
    }
}

#[test]
fn flat_rayleigh_fading_decodes() {
    let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let mut ok = 0;
    let trials = 12;
    for seed in 0..trials {
        let mut b = TraceBuilder::new(params, seed);
        b.add_packet(
            &[0x3Au8; 16],
            PacketConfig {
                start_sample: 2_000,
                snr_db: 18.0,
                cfo_hz: 800.0,
                channel: ChannelModel::FlatRayleigh { doppler_hz: 5.0 },
                ..Default::default()
            },
        );
        let trace = b.build();
        let decoded = TnbReceiver::new(params).decode(trace.samples());
        ok += decoded.iter().any(|d| d.payload == [0x3Au8; 16]) as u32;
    }
    // Rayleigh outages lose a few packets even at 18 dB; most must pass.
    assert!(ok >= trials as u32 * 2 / 3, "decoded {ok}/{trials}");
}

#[test]
fn sf12_extreme_parameters_work() {
    // The largest supported SF exercises 4096-chip symbols end to end.
    let params = LoRaParams::new(SpreadingFactor::SF12, CodingRate::CR1);
    let payload = b"SF12 woz ere".to_vec();
    let mut b = TraceBuilder::new(params, 5);
    b.add_packet(
        &payload,
        PacketConfig {
            start_sample: 9_999,
            snr_db: 0.0,
            cfo_hz: -500.0,
            ..Default::default()
        },
    );
    let trace = b.build();
    let decoded = TnbReceiver::new(params).decode(trace.samples());
    assert_eq!(decoded.len(), 1);
    assert_eq!(decoded[0].payload, payload);
}

#[test]
fn back_to_back_packets_both_decode() {
    // Two packets from the same node area, not overlapping: trivially both
    // decoded, and starts reported in order.
    let params = LoRaParams::new(SpreadingFactor::SF7, CodingRate::CR2);
    let mut b = TraceBuilder::new(params, 6);
    let airtime = b.packet_samples(8);
    b.add_packet(
        &[1u8; 8],
        PacketConfig {
            start_sample: 1_000,
            snr_db: 10.0,
            ..Default::default()
        },
    );
    b.add_packet(
        &[2u8; 8],
        PacketConfig {
            start_sample: 1_000 + airtime + 5_000,
            snr_db: 10.0,
            cfo_hz: 900.0,
            ..Default::default()
        },
    );
    let trace = b.build();
    let decoded = TnbReceiver::new(params).decode(trace.samples());
    assert_eq!(decoded.len(), 2);
    assert!(decoded[0].start < decoded[1].start);
    assert_eq!(decoded[0].payload, [1u8; 8]);
    assert_eq!(decoded[1].payload, [2u8; 8]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary finite garbage samples must never panic the receiver or
    /// produce CRC-passing ghosts.
    #[test]
    fn garbage_samples_are_safe(seed in 0u64..1000, amp in 0.1f32..50.0) {
        let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) as f32 - 0.5
        };
        let samples: Vec<tnb::dsp::Complex32> = (0..60_000)
            .map(|_| tnb::dsp::Complex32::new(next() * amp, next() * amp))
            .collect();
        let decoded = TnbReceiver::new(params).decode(&samples);
        // White garbage has no preamble structure; anything "decoded"
        // would be a CRC collision.
        prop_assert!(decoded.is_empty(), "{} ghosts", decoded.len());
    }
}

#[test]
fn receiver_tolerates_crystal_drift() {
    // Commodity crystals drift tens of ppm; over a 133 ms SF-8 packet,
    // 20 ppm is ~2.7 samples of cumulative timing error — within the
    // receiver's tolerance. 500 ppm (~67 samples) is not, and must fail
    // cleanly rather than produce garbage.
    use tnb::channel::impairments::apply_clock_drift;
    use tnb::phy::Transmitter;

    let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let payload = b"crystal drift ok".to_vec();
    let clean = Transmitter::new(params).transmit(&payload);

    for (ppm, must_decode) in [(10.0f64, true), (20.0, true), (500.0, false)] {
        let drifted = apply_clock_drift(&clean, ppm);
        let mut b = TraceBuilder::new(params, 71);
        b.add_packet_samples(&drifted, 5_000, 900.0, 12.0);
        // Pad past the packet: a fast crystal shrinks the waveform, and
        // the receiver needs a full final symbol window.
        b.set_min_len(5_000 + clean.len() + 8_192);
        let trace = b.build();
        let decoded = TnbReceiver::new(params).decode(trace.samples());
        if must_decode {
            assert_eq!(decoded.len(), 1, "ppm={ppm}");
            assert_eq!(decoded[0].payload, payload, "ppm={ppm}");
        } else {
            for d in &decoded {
                assert_eq!(d.payload, payload, "ppm={ppm}: wrong payload emitted");
            }
        }
    }
}
